package server_test

// End-to-end scenarios for the mutation routes POST /v1/data/insert and
// POST /v1/data/remove: mutations land in the served dataset (new IDs
// resolve in query responses through the epoch-refreshed render table),
// every mutation bumps the served epoch so stale batch-cache entries become
// unreachable, /metrics exposes the epoch/delta-residency/merge counters,
// and the 400 taxonomy covers sharded datasets and malformed bodies.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	twoknn "repro"
	"repro/internal/datagen"
	"repro/internal/server"
)

// mutableServer serves one mutable single relation ("trips") and one sharded
// relation ("grid2") for the rejection path.
func mutableServer(t testing.TB) (*httptest.Server, *twoknn.Relation) {
	t.Helper()
	bounds := twoknn.NewRect(0, 0, 1000, 1000)
	pts := datagen.Uniform(500, bounds, 21)
	rel, err := twoknn.NewRelation("trips", pts,
		twoknn.WithBlockCapacity(32), twoknn.WithCompactThreshold(-1))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := twoknn.NewShardedRelation("grid2", datagen.Uniform(200, bounds, 22), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{})
	if err := srv.Register("trips", rel); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("grid2", sharded); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, rel
}

func postJSON(t testing.TB, url string, req server.Request) (int, []byte) {
	t.Helper()
	body, err := server.EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func mutate(t testing.TB, url string, req server.Request) server.MutateResponse {
	t.Helper()
	status, body := postJSON(t, url, req)
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d, body %s", url, status, body)
	}
	var out server.MutateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding mutate response: %v (%s)", err, body)
	}
	return out
}

func queryURL(t testing.TB, url string, req server.Request) server.QueryResponse {
	t.Helper()
	status, body := postJSON(t, url, req)
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d, body %s", url, status, body)
	}
	var out server.QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding query response: %v (%s)", err, body)
	}
	return out
}

func metricsOf(t testing.TB, base string) server.MetricsResponse {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMutationRoutes(t *testing.T) {
	ts, rel := mutableServer(t)
	insertURL := ts.URL + "/v1/data/insert"
	removeURL := ts.URL + "/v1/data/remove"
	epoch0 := rel.Epoch()

	// Insert two points, one far outside the built bounds.
	ins := mutate(t, insertURL, &server.InsertRequest{Dataset: "trips",
		Points: []server.PointArg{{X: 500.5, Y: 500.5}, {X: 4000, Y: 4000}}})
	if len(ins.IDs) != 2 || ins.IDs[0] != 500 || ins.IDs[1] != 501 {
		t.Fatalf("insert IDs = %v, want [500 501]", ins.IDs)
	}
	if ins.Epoch <= epoch0 || ins.Len != 502 {
		t.Fatalf("insert response epoch=%d len=%d (pre-epoch %d)", ins.Epoch, ins.Len, epoch0)
	}

	// The inserted point is queryable AND its fresh stable ID resolves in
	// the response row — the render table refreshed past the Register-time
	// snapshot (a dense Register-time table would have no row 500 at all).
	q := queryURL(t, ts.URL+"/v1/query/knn-select", &server.KNNSelectRequest{
		Dataset: "trips", F: server.PointArg{X: 500.5, Y: 500.5}, K: 1})
	if len(q.Points) != 1 || q.Points[0] != (server.PointRow{ID: 500, X: 500.5, Y: 500.5}) {
		t.Fatalf("inserted point not served with its new ID: %+v", q.Points)
	}

	// Remove one live and one dead ID: only the live one counts.
	rm := mutate(t, removeURL, &server.RemoveRequest{Dataset: "trips", IDs: []int32{500, 9999}})
	if rm.Removed != 1 || rm.Epoch <= ins.Epoch || rm.Len != 501 {
		t.Fatalf("remove response: %+v (insert epoch %d)", rm, ins.Epoch)
	}
	q = queryURL(t, ts.URL+"/v1/query/knn-select", &server.KNNSelectRequest{
		Dataset: "trips", F: server.PointArg{X: 500.5, Y: 500.5}, K: 1})
	if len(q.Points) == 1 && q.Points[0].ID == 500 {
		t.Fatalf("removed point still served: %+v", q.Points)
	}

	// Removing it again is a no-op with no epoch bump.
	rm2 := mutate(t, removeURL, &server.RemoveRequest{Dataset: "trips", IDs: []int32{500}})
	if rm2.Removed != 0 || rm2.Epoch != rm.Epoch {
		t.Fatalf("repeat remove: %+v (want removed=0, epoch %d)", rm2, rm.Epoch)
	}

	// 400 taxonomy.
	for _, tc := range []struct {
		name string
		url  string
		req  server.Request
	}{
		{"unknown dataset", insertURL, &server.InsertRequest{Dataset: "nope", Points: []server.PointArg{{X: 1, Y: 2}}}},
		{"sharded dataset", insertURL, &server.InsertRequest{Dataset: "grid2", Points: []server.PointArg{{X: 1, Y: 2}}}},
		{"sharded remove", removeURL, &server.RemoveRequest{Dataset: "grid2", IDs: []int32{0}}},
		{"empty points", insertURL, &server.InsertRequest{Dataset: "trips"}},
		{"empty ids", removeURL, &server.RemoveRequest{Dataset: "trips"}},
		{"negative id", removeURL, &server.RemoveRequest{Dataset: "trips", IDs: []int32{-4}}},
	} {
		status, body := postJSON(t, tc.url, tc.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", tc.name, status, body)
		}
		var er server.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Code != "bad_request" {
			t.Errorf("%s: error body %s", tc.name, body)
		}
	}
	status, body := postJSON(t, insertURL, badFieldRequest{})
	if status != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, body %s", status, body)
	}
}

// badFieldRequest encodes a body with a field no mutation request has.
type badFieldRequest struct{}

func (badFieldRequest) Validate() error { return nil }
func (badFieldRequest) MarshalJSON() ([]byte, error) {
	return []byte(`{"dataset":"trips","frobnicate":true}`), nil
}

// TestMutationCacheInvalidation is the end-to-end invalidation scenario the
// epoch design promises: serve a batch (miss → cached), serve it again
// (hit), mutate through the data routes, and the stale cached result is
// unreachable — the same request misses again and reflects the mutation —
// while /metrics' epoch, delta-residency and hit/miss counters tell the
// same story.
func TestMutationCacheInvalidation(t *testing.T) {
	ts, rel := mutableServer(t)
	focal := server.PointArg{X: 321, Y: 321}
	batchReq := &server.KNNSelectBatchRequest{Dataset: "trips",
		Focals: []server.PointArg{focal, focal}, K: 3}
	batchURL := ts.URL + "/v1/query/knn-select-batch"

	first := queryURL(t, batchURL, batchReq)
	if first.Stats.CacheMisses != 2 || first.Stats.CacheHits != 0 {
		t.Fatalf("first: hits=%d misses=%d", first.Stats.CacheHits, first.Stats.CacheMisses)
	}
	second := queryURL(t, batchURL, batchReq)
	if second.Stats.CacheHits != 2 || second.Stats.CacheMisses != 0 {
		t.Fatalf("second: hits=%d misses=%d", second.Stats.CacheHits, second.Stats.CacheMisses)
	}
	if !reflect.DeepEqual(second.Batches, first.Batches) {
		t.Fatal("cache hit diverges from computed result")
	}

	// Mutate through the route: a point exactly on the focal must displace
	// the previous 3-NN answer.
	ins := mutate(t, ts.URL+"/v1/data/insert", &server.InsertRequest{Dataset: "trips",
		Points: []server.PointArg{{X: 321, Y: 321}}})

	third := queryURL(t, batchURL, batchReq)
	if third.Stats.CacheMisses != 2 || third.Stats.CacheHits != 0 {
		t.Fatalf("post-mutation: hits=%d misses=%d (stale entry served?)",
			third.Stats.CacheHits, third.Stats.CacheMisses)
	}
	if reflect.DeepEqual(third.Batches, first.Batches) {
		t.Fatal("post-mutation batch identical to pre-mutation batch")
	}
	if got := third.Batches[0][0]; got != (server.PointRow{ID: ins.IDs[0], X: 321, Y: 321}) {
		t.Fatalf("nearest neighbor after insert = %+v, want the inserted point", got)
	}

	// Fourth request: the post-mutation result is itself cached.
	fourth := queryURL(t, batchURL, batchReq)
	if fourth.Stats.CacheHits != 2 || !reflect.DeepEqual(fourth.Batches, third.Batches) {
		t.Fatalf("fourth: hits=%d", fourth.Stats.CacheHits)
	}

	// /metrics agrees: served epoch matches the engine's, the delta holds
	// the inserted point, the mutation was counted, and the lifetime cache
	// counters add up (4 misses, 4 hits across the four requests).
	m := metricsOf(t, ts.URL)
	dm, ok := m.Datasets["trips"]
	if !ok {
		t.Fatal("no trips dataset in /metrics")
	}
	if dm.Epoch != rel.Epoch() || dm.Epoch != ins.Epoch {
		t.Fatalf("metrics epoch %d, engine %d, mutation response %d", dm.Epoch, rel.Epoch(), ins.Epoch)
	}
	if dm.Delta == nil {
		t.Fatal("no delta stats for a mutable dataset")
	}
	if dm.Delta.DeltaLive != 1 || dm.Delta.Mutations != 1 || dm.Delta.Compactions != 0 {
		t.Fatalf("delta residency: %+v", dm.Delta)
	}
	if dm.Points != 501 || dm.Delta.Live != 501 {
		t.Fatalf("points=%d delta.live=%d, want 501", dm.Points, dm.Delta.Live)
	}
	if dm.CacheHits != 4 || dm.CacheMisses != 4 {
		t.Fatalf("lifetime cache counters: hits=%d misses=%d, want 4/4", dm.CacheHits, dm.CacheMisses)
	}
	if rm := m.Routes["data-insert"]; rm.Requests != 1 || rm.OK != 1 {
		t.Fatalf("data-insert route counters: %+v", rm)
	}

	// Compaction merges the delta without bumping the epoch: cached
	// post-mutation results stay valid (the live set did not change).
	if err := rel.Compact(); err != nil {
		t.Fatal(err)
	}
	fifth := queryURL(t, batchURL, batchReq)
	if fifth.Stats.CacheHits != 2 || !reflect.DeepEqual(fifth.Batches, third.Batches) {
		t.Fatalf("post-compact: hits=%d (compaction must not invalidate)", fifth.Stats.CacheHits)
	}
	m = metricsOf(t, ts.URL)
	dm = m.Datasets["trips"]
	if dm.Delta.DeltaLive != 0 || dm.Delta.Tombstones != 0 || dm.Delta.Compactions != 1 {
		t.Fatalf("post-compact delta residency: %+v", dm.Delta)
	}
	if dm.Epoch != ins.Epoch {
		t.Fatalf("compaction bumped the served epoch: %d -> %d", ins.Epoch, dm.Epoch)
	}
}

// TestMutationRouteList keeps the Handler doc's route list in sync: both
// data routes exist and reject GET.
func TestMutationRouteList(t *testing.T) {
	ts, _ := mutableServer(t)
	for _, route := range []string{"/v1/data/insert", "/v1/data/remove"} {
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", route, resp.StatusCode)
		}
		resp, err = http.Post(ts.URL+route, "application/json", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s with truncated JSON: status %d, want 400", route, resp.StatusCode)
		}
	}
}
