package server_test

// Admission-control and request-lifecycle scenarios: shed (429 + Retry-After)
// from both admission layers, deadline expiry (504), panic isolation (500
// with the process alive), the 400 taxonomy, and a mixed-shape concurrent
// hammer that must leave no searcher handle outstanding.
//
// Scenarios that arm the fault injector never run in parallel: the harness
// is deliberately process-global (see internal/fault).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	twoknn "repro"
	"repro/internal/dataload"
	"repro/internal/fault"
	"repro/internal/server"
)

// mini is a small two-dataset server ("pts" single, "sharded" hash-split)
// with configurable engine-level pool bounds.
type mini struct {
	srv     *server.Server
	ts      *httptest.Server
	single  *twoknn.Relation
	sharded *twoknn.ShardedRelation
}

func newMini(t testing.TB, cfg server.Config, relOpts ...twoknn.RelationOption) *mini {
	t.Helper()
	sp, err := dataload.Parse("uniform:n=2000,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sp.Points()
	if err != nil {
		t.Fatal(err)
	}
	single, err := twoknn.NewRelation("pts", pts, relOpts...)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := twoknn.NewShardedRelation("sharded", pts, 3, relOpts...)
	if err != nil {
		t.Fatal(err)
	}
	m := &mini{srv: server.New(cfg), single: single, sharded: sharded}
	if err := m.srv.Register("pts", single); err != nil {
		t.Fatal(err)
	}
	if err := m.srv.Register("sharded", sharded); err != nil {
		t.Fatal(err)
	}
	m.ts = httptest.NewServer(m.srv.Handler())
	t.Cleanup(m.ts.Close)
	return m
}

type wireResult struct {
	status int
	header http.Header
	body   []byte
}

// send posts a request struct (or raw bytes) to a query route.
func send(t testing.TB, ts *httptest.Server, route string, req server.Request, raw []byte) wireResult {
	t.Helper()
	body := raw
	if req != nil {
		var err error
		body, err = server.EncodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/query/"+route, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return wireResult{status: resp.StatusCode, header: resp.Header, body: data}
}

// decodeError unmarshals an ErrorResponse body.
func decodeError(t testing.TB, body []byte) server.ErrorResponse {
	t.Helper()
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decoding error body %q: %v", body, err)
	}
	return e
}

// blockFirstQuery arms an injector that parks the first query reaching a
// cancellation checkpoint until release is closed, and signals entry on
// entered. The t.Cleanup disarms and unblocks even when the test fails early.
func blockFirstQuery(t testing.TB) (entered <-chan struct{}, release func()) {
	t.Helper()
	in := make(chan struct{})
	out := make(chan struct{})
	var once, closeOnce sync.Once
	fault.Arm(&fault.Injector{BlockScan: func(uint64) {
		once.Do(func() {
			close(in)
			<-out
		})
	}})
	rel := func() { closeOnce.Do(func() { close(out) }) }
	t.Cleanup(func() {
		rel()
		fault.Disarm()
	})
	return in, rel
}

func knnSelectReq(dataset string, timeoutMS int64) *server.KNNSelectRequest {
	req := &server.KNNSelectRequest{Dataset: dataset, F: focal, K: 5}
	req.TimeoutMS = timeoutMS
	return req
}

// TestInflightGateSheds429 exercises the server-level admission layer: with
// MaxInflight=1, a request parked inside the engine makes the next one shed
// immediately with 429 + Retry-After, and the dataset serves again once the
// first completes.
func TestInflightGateSheds429(t *testing.T) {
	m := newMini(t, server.Config{MaxInflight: 1, RetryAfter: 1500 * time.Millisecond})
	entered, release := blockFirstQuery(t)

	first := make(chan wireResult, 1)
	go func() { first <- send(t, m.ts, "knn-select", knnSelectReq("pts", 0), nil) }()
	<-entered // the first request now holds the only admission slot

	shed := send(t, m.ts, "knn-select", knnSelectReq("pts", 0), nil)
	if shed.status != http.StatusTooManyRequests {
		t.Fatalf("gated request: status %d, body %s", shed.status, shed.body)
	}
	if got := shed.header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q (1500ms rounded up)", got, "2")
	}
	if e := decodeError(t, shed.body); e.Code != "shed_load" {
		t.Errorf("shed code = %q, want shed_load", e.Code)
	}

	release()
	if r := <-first; r.status != http.StatusOK {
		t.Fatalf("parked request finished with %d: %s", r.status, r.body)
	}
	fault.Disarm()
	if r := send(t, m.ts, "knn-select", knnSelectReq("pts", 0), nil); r.status != http.StatusOK {
		t.Fatalf("post-shed request: status %d, body %s", r.status, r.body)
	}
}

// TestBoundedPoolSheds429 exercises the engine-level admission layer: a
// dataset built with WithMaxSearchers(1) whose only searcher is held makes
// the next request's deadline-bounded pool wait fail, and the server maps
// that ErrSearchersExhausted chain to 429 — not 504, even though the chain
// also carries ErrQueryCanceled.
func TestBoundedPoolSheds429(t *testing.T) {
	m := newMini(t, server.Config{}, twoknn.WithMaxSearchers(1))
	entered, release := blockFirstQuery(t)

	first := make(chan wireResult, 1)
	go func() { first <- send(t, m.ts, "knn-select", knnSelectReq("pts", 0), nil) }()
	<-entered // the first request now holds the only pooled searcher

	shed := send(t, m.ts, "knn-select", knnSelectReq("pts", 100), nil)
	if shed.status != http.StatusTooManyRequests {
		t.Fatalf("pool-starved request: status %d, body %s", shed.status, shed.body)
	}
	if shed.header.Get("Retry-After") == "" {
		t.Error("429 response is missing Retry-After")
	}
	e := decodeError(t, shed.body)
	if e.Code != "shed_load" {
		t.Errorf("code = %q, want shed_load (ErrSearchersExhausted must outrank the deadline mapping)", e.Code)
	}
	if !strings.Contains(e.Error, "searcher pool exhausted") {
		t.Errorf("error %q does not name the exhausted pool", e.Error)
	}

	release()
	if r := <-first; r.status != http.StatusOK {
		t.Fatalf("parked request finished with %d: %s", r.status, r.body)
	}
	fault.Disarm()
	if r := send(t, m.ts, "knn-select", knnSelectReq("pts", 0), nil); r.status != http.StatusOK {
		t.Fatalf("post-shed request: status %d, body %s", r.status, r.body)
	}
	if n := m.single.OutstandingSearchers(); n != 0 {
		t.Errorf("OutstandingSearchers = %d after recovery, want 0", n)
	}
}

// TestDeadlineReturns504 places a delay at the first checkpoint so a short
// request budget expires mid-query; the cooperative unwind must surface as
// 504 with the engine's typed cancellation text.
func TestDeadlineReturns504(t *testing.T) {
	m := newMini(t, server.Config{})
	fault.Arm(&fault.Injector{BlockScan: func(n uint64) {
		if n == 1 {
			time.Sleep(150 * time.Millisecond)
		}
	}})
	defer fault.Disarm()

	r := send(t, m.ts, "knn-join", func() server.Request {
		req := &server.KNNJoinRequest{Outer: "pts", Inner: "pts", K: 3}
		req.TimeoutMS = 50
		return req
	}(), nil)
	if r.status != http.StatusGatewayTimeout {
		t.Fatalf("expired request: status %d, body %s", r.status, r.body)
	}
	e := decodeError(t, r.body)
	if e.Code != "deadline" {
		t.Errorf("code = %q, want deadline", e.Code)
	}
	if !strings.Contains(e.Error, "twoknn: query canceled") {
		t.Errorf("error %q does not carry the typed cancellation text", e.Error)
	}
	if !strings.Contains(e.Error, "context deadline exceeded") {
		t.Errorf("error %q does not carry the context cause", e.Error)
	}

	fault.Disarm()
	if r := send(t, m.ts, "knn-select", knnSelectReq("pts", 0), nil); r.status != http.StatusOK {
		t.Fatalf("post-deadline request: status %d, body %s", r.status, r.body)
	}
	if n := m.single.OutstandingSearchers(); n != 0 {
		t.Errorf("OutstandingSearchers = %d after deadline, want 0", n)
	}
}

// TestPanicReturns500AndServerSurvives injects a worker panic; the server
// must answer 500 with the typed panic error and keep serving — against both
// single and sharded datasets (the sharded path crosses worker goroutines).
func TestPanicReturns500AndServerSurvives(t *testing.T) {
	m := newMini(t, server.Config{})
	for _, dataset := range []string{"pts", "sharded"} {
		fault.PanicAtBlock(3, "injected boom")

		r := send(t, m.ts, "knn-select", knnSelectReq(dataset, 0), nil)
		if r.status != http.StatusInternalServerError {
			t.Fatalf("%s: poisoned request: status %d, body %s", dataset, r.status, r.body)
		}
		e := decodeError(t, r.body)
		if e.Code != "panic" {
			t.Errorf("%s: code = %q, want panic", dataset, e.Code)
		}
		if !strings.Contains(e.Error, "twoknn: panic during query execution") ||
			!strings.Contains(e.Error, "injected boom") {
			t.Errorf("%s: error %q does not carry the typed panic text and value", dataset, e.Error)
		}

		fault.Disarm()
		if r := send(t, m.ts, "knn-select", knnSelectReq(dataset, 0), nil); r.status != http.StatusOK {
			t.Fatalf("%s: post-panic request: status %d, body %s", dataset, r.status, r.body)
		}
	}
	if n := m.single.OutstandingSearchers() + m.sharded.OutstandingSearchers(); n != 0 {
		t.Errorf("OutstandingSearchers = %d after panics, want 0", n)
	}
}

// TestBadRequestTaxonomy pins every 400 path: codec-level strictness and the
// engine's ErrNilRelation/ErrNonPositiveK mappings.
func TestBadRequestTaxonomy(t *testing.T) {
	m := newMini(t, server.Config{})
	cases := []struct {
		name    string
		route   string
		req     server.Request
		raw     []byte
		errPart string
	}{
		{name: "malformed JSON", route: "knn-select", raw: []byte(`{"dataset": "pts",`), errPart: "decoding request"},
		{name: "unknown field", route: "knn-select", raw: []byte(`{"dataset":"pts","k":5,"frobnicate":1}`), errPart: "frobnicate"},
		{name: "trailing data", route: "knn-select", raw: []byte(`{"dataset":"pts","k":5} {"again":true}`), errPart: "trailing data"},
		{name: "negative timeout", route: "knn-select", raw: []byte(`{"dataset":"pts","k":5,"timeout_ms":-1}`), errPart: "timeout_ms"},
		{name: "unknown algorithm", route: "knn-select", raw: []byte(`{"dataset":"pts","k":5,"algorithm":"psychic"}`), errPart: "unknown algorithm"},
		{name: "non-positive k", route: "knn-select", req: &server.KNNSelectRequest{Dataset: "pts", F: focal, K: 0}, errPart: "k must be positive"},
		{name: "unknown dataset", route: "knn-select", req: &server.KNNSelectRequest{Dataset: "nope", F: focal, K: 5}, errPart: "nil relation"},
		{name: "unknown join dataset", route: "knn-join", req: &server.KNNJoinRequest{Outer: "pts", Inner: "nope", K: 3}, errPart: "nil relation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := send(t, m.ts, tc.route, tc.req, tc.raw)
			if r.status != http.StatusBadRequest {
				t.Fatalf("status %d, body %s; want 400", r.status, r.body)
			}
			e := decodeError(t, r.body)
			if e.Code != "bad_request" {
				t.Errorf("code = %q, want bad_request", e.Code)
			}
			if !strings.Contains(e.Error, tc.errPart) {
				t.Errorf("error %q does not contain %q", e.Error, tc.errPart)
			}
		})
	}
}

// TestConcurrentHammer drives 16 clients through mixed query shapes —
// including invalid and tightly-budgeted requests — against gated, bounded
// datasets, then asserts the lifecycle left nothing behind: zero outstanding
// searchers, consistent route counters, healthy /healthz. Run under -race in
// CI.
func TestConcurrentHammer(t *testing.T) {
	m := newMini(t,
		server.Config{MaxInflight: 8, DefaultTimeout: 5 * time.Second},
		twoknn.WithMaxSearchers(4))

	const clients = 16
	const perClient = 25
	var issued, got200, got400, got429, got504 atomic.Int64

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				dataset := "pts"
				if (c+i)%2 == 1 {
					dataset = "sharded"
				}
				var route string
				var req server.Request
				switch i % 5 {
				case 0:
					route, req = "knn-select", knnSelectReq(dataset, 0)
				case 1:
					route, req = "two-selects", &server.TwoSelectsRequest{Dataset: dataset, F1: focal, K1: 3, F2: focal2, K2: 4}
				case 2:
					route, req = "knn-join", &server.KNNJoinRequest{Outer: "pts", Inner: dataset, K: 2}
				case 3:
					// Invalid on purpose: k = 0 must 400 under load too.
					route, req = "knn-select", &server.KNNSelectRequest{Dataset: dataset, F: focal, K: 0}
				case 4:
					// A 1 ms budget: completes, sheds or expires — any of
					// 200/429/504 is legal, leaking is not.
					route, req = "select-inner-join", func() server.Request {
						r := &server.SelectInnerJoinRequest{Outer: "pts", Inner: dataset, F: focal, KJoin: 2, KSel: 5}
						r.TimeoutMS = 1
						return r
					}()
				}
				issued.Add(1)
				r := send(t, m.ts, route, req, nil)
				switch r.status {
				case http.StatusOK:
					got200.Add(1)
				case http.StatusBadRequest:
					got400.Add(1)
				case http.StatusTooManyRequests:
					got429.Add(1)
				case http.StatusGatewayTimeout:
					got504.Add(1)
				default:
					t.Errorf("unexpected status %d: %s", r.status, r.body)
				}
			}
		}(c)
	}
	wg.Wait()
	t.Logf("hammer: %d issued, %d ok, %d bad, %d shed, %d deadline",
		issued.Load(), got200.Load(), got400.Load(), got429.Load(), got504.Load())

	if n := m.single.OutstandingSearchers(); n != 0 {
		t.Errorf("single OutstandingSearchers = %d after hammer, want 0", n)
	}
	if n := m.sharded.OutstandingSearchers(); n != 0 {
		t.Errorf("sharded OutstandingSearchers = %d after hammer, want 0", n)
	}
	if want := int64(clients * perClient); issued.Load() != want {
		t.Fatalf("issued %d requests, want %d", issued.Load(), want)
	}
	if got400.Load() < int64(clients) {
		t.Errorf("expected at least %d bad requests (one per client's k=0 round), got %d", clients, got400.Load())
	}

	// The /metrics snapshot must agree with what the clients observed.
	resp, err := http.Get(m.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mx server.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var totalReq, totalOK, totalShed, totalDeadline int64
	for _, rm := range mx.Routes {
		totalReq += rm.Requests
		totalOK += rm.OK
		totalShed += rm.Shed
		totalDeadline += rm.Deadline
	}
	if totalReq != issued.Load() {
		t.Errorf("metrics count %d requests, clients issued %d", totalReq, issued.Load())
	}
	if totalOK != got200.Load() || totalShed != got429.Load() || totalDeadline != got504.Load() {
		t.Errorf("metrics (ok=%d shed=%d deadline=%d) disagree with clients (ok=%d shed=%d deadline=%d)",
			totalOK, totalShed, totalDeadline, got200.Load(), got429.Load(), got504.Load())
	}
	for name, dm := range mx.Datasets {
		if dm.OutstandingSearchers != 0 {
			t.Errorf("dataset %s reports %d outstanding searchers", name, dm.OutstandingSearchers)
		}
		if dm.Inflight != 0 {
			t.Errorf("dataset %s reports %d inflight admission slots", name, dm.Inflight)
		}
	}

	hr, err := http.Get(m.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health server.HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.Status != "ok" {
		t.Errorf("healthz after hammer = %+v", health)
	}
}
