package server

import (
	"context"
	"fmt"
	"net/http"

	twoknn "repro"
	"repro/internal/qcache"
)

// queryOpts assembles the engine options every route shares: the request
// context (deadline + cancellation), per-request stats, the forced algorithm
// and, when asked for, an EXPLAIN target.
func queryOpts(ctx context.Context, c *Common, st *twoknn.Stats) ([]twoknn.QueryOption, *string) {
	opts := []twoknn.QueryOption{
		twoknn.WithContext(ctx),
		twoknn.WithStats(st),
		twoknn.WithAlgorithm(c.algorithmOption()),
	}
	var explain *string
	if c.Explain {
		explain = new(string)
		opts = append(opts, twoknn.WithExplain(explain))
	}
	return opts, explain
}

// finish folds the request's counters into every distinct operand dataset's
// lifetime totals and fills the envelope's shared fields.
func finish(resp QueryResponse, st *twoknn.Stats, explain *string, ds ...*dataset) QueryResponse {
	folded := make(map[*dataset]bool, len(ds))
	for _, d := range ds {
		if d != nil && !folded[d] {
			folded[d] = true
			d.stats.Add(st)
		}
	}
	resp.Stats = st.Snapshot()
	if explain != nil {
		resp.Explain = *explain
	}
	return resp
}

// pointRows renders a point result against one dataset's current render
// table (one epoch-check per call, not per point).
func pointRows(d *dataset, pts []twoknn.Point) []PointRow {
	rt := d.render()
	rows := make([]PointRow, len(pts))
	for i, p := range pts {
		rows[i] = rt.row(p)
	}
	return rows
}

// pairRows renders a join result: Left resolves in the outer dataset,
// Right in the inner.
func pairRows(outer, inner *dataset, pairs []twoknn.Pair) []PairRow {
	ro, ri := outer.render(), inner.render()
	rows := make([]PairRow, len(pairs))
	for i, pr := range pairs {
		rows[i] = PairRow{Left: ro.row(pr.Left), Right: ri.row(pr.Right)}
	}
	return rows
}

// tripleRows renders a two-join result; each column resolves in its own
// dataset.
func tripleRows(a, b, c *dataset, ts []twoknn.Triple) []TripleRow {
	ra, rb, rc := a.render(), b.render(), c.render()
	rows := make([]TripleRow, len(ts))
	for i, tr := range ts {
		rows[i] = TripleRow{A: ra.row(tr.A), B: rb.row(tr.B), C: rc.row(tr.C)}
	}
	return rows
}

func (s *Server) handleKNNSelect(w http.ResponseWriter, r *http.Request) {
	var req KNNSelectRequest
	s.serve(w, r, "knn-select", &req, func() ([]*dataset, func(context.Context) (QueryResponse, error)) {
		d := s.lookup(req.Dataset)
		return []*dataset{d}, func(ctx context.Context) (QueryResponse, error) {
			var st twoknn.Stats
			opts, explain := queryOpts(ctx, &req.Common, &st)
			pts, err := twoknn.KNNSelect(source(d), req.F.Point(), req.K, opts...)
			if err != nil {
				return QueryResponse{}, err
			}
			rows := pointRows(d, pts)
			return finish(QueryResponse{Points: rows, Count: len(rows)}, &st, explain, d), nil
		}
	})
}

func (s *Server) handleKNNSelectBatch(w http.ResponseWriter, r *http.Request) {
	var req KNNSelectBatchRequest
	s.serve(w, r, "knn-select-batch", &req, func() ([]*dataset, func(context.Context) (QueryResponse, error)) {
		d := s.lookup(req.Dataset)
		return []*dataset{d}, func(ctx context.Context) (QueryResponse, error) {
			// Coalesce identical concurrent requests: the flight key is the
			// request's canonical re-encoding, so any field difference
			// (focals, k, algorithm, explain, timeout) splits flights.
			key, err := EncodeRequest(&req)
			if err != nil {
				return QueryResponse{}, err
			}
			return s.singleFlight(ctx, string(key), func(ctx context.Context) (QueryResponse, error) {
				return s.evalKNNSelectBatch(ctx, d, &req)
			})
		}
	})
}

// evalKNNSelectBatch is the batch route's leader evaluation: probe the
// dataset's epoch-keyed result cache per focal, run the engine's batched
// driver once over all misses, store their IDs back, and render. EXPLAIN
// requests bypass the cache so the rendered plan reflects a real evaluation.
func (s *Server) evalKNNSelectBatch(ctx context.Context, d *dataset, req *KNNSelectBatchRequest) (QueryResponse, error) {
	var st twoknn.Stats
	opts, explain := queryOpts(ctx, &req.Common, &st)

	batches := make([][]PointRow, len(req.Focals))
	missIdx := make([]int, 0, len(req.Focals))
	missFocals := make([]twoknn.Point, 0, len(req.Focals))
	var epoch uint64
	var rt *renderTable
	useCache := d != nil && !req.Explain
	if useCache {
		epoch = d.src.Epoch()
		rt = d.render()
	}
	for i, f := range req.Focals {
		if useCache {
			key := qcache.Key{Epoch: epoch, FX: f.X, FY: f.Y, K: req.K, Shape: qcache.ShapeKNNSelect}
			if ids, ok := d.cache.Get(key); ok {
				// An ID the table no longer resolves means a mutation slid in
				// between the epoch read and the table load; fall through to a
				// real evaluation rather than render a stale row.
				if rows, ok := rt.rows(ids); ok {
					st.AddCacheHit()
					batches[i] = rows
					continue
				}
			}
			st.AddCacheMiss()
		}
		missIdx = append(missIdx, i)
		missFocals = append(missFocals, f.Point())
	}

	if len(missFocals) > 0 || d == nil {
		res, err := twoknn.KNNSelectBatch(source(d), missFocals, req.K, opts...)
		if err != nil {
			return QueryResponse{}, err
		}
		for j, i := range missIdx {
			rows := pointRows(d, res[j])
			batches[i] = rows
			if useCache {
				ids := make([]int32, len(rows))
				cacheable := true
				for r, row := range rows {
					if row.ID < 0 {
						cacheable = false // unresolvable point; don't memoize
						break
					}
					ids[r] = row.ID
				}
				if cacheable {
					f := req.Focals[i]
					d.cache.Put(qcache.Key{Epoch: epoch, FX: f.X, FY: f.Y, K: req.K, Shape: qcache.ShapeKNNSelect}, ids)
				}
			}
		}
	}

	count := 0
	for _, rows := range batches {
		count += len(rows)
	}
	return finish(QueryResponse{Batches: batches, Count: count}, &st, explain, d), nil
}

func (s *Server) handleKNNJoin(w http.ResponseWriter, r *http.Request) {
	var req KNNJoinRequest
	s.serve(w, r, "knn-join", &req, func() ([]*dataset, func(context.Context) (QueryResponse, error)) {
		outer, inner := s.lookup(req.Outer), s.lookup(req.Inner)
		return []*dataset{outer, inner}, func(ctx context.Context) (QueryResponse, error) {
			var st twoknn.Stats
			opts, explain := queryOpts(ctx, &req.Common, &st)
			pairs, err := twoknn.KNNJoin(source(outer), source(inner), req.K, opts...)
			if err != nil {
				return QueryResponse{}, err
			}
			rows := pairRows(outer, inner, pairs)
			return finish(QueryResponse{Pairs: rows, Count: len(rows)}, &st, explain, outer, inner), nil
		}
	})
}

func (s *Server) handleSelectInnerJoin(w http.ResponseWriter, r *http.Request) {
	var req SelectInnerJoinRequest
	s.serve(w, r, "select-inner-join", &req, func() ([]*dataset, func(context.Context) (QueryResponse, error)) {
		outer, inner := s.lookup(req.Outer), s.lookup(req.Inner)
		return []*dataset{outer, inner}, func(ctx context.Context) (QueryResponse, error) {
			var st twoknn.Stats
			opts, explain := queryOpts(ctx, &req.Common, &st)
			pairs, err := twoknn.SelectInnerJoin(source(outer), source(inner), req.F.Point(), req.KJoin, req.KSel, opts...)
			if err != nil {
				return QueryResponse{}, err
			}
			rows := pairRows(outer, inner, pairs)
			return finish(QueryResponse{Pairs: rows, Count: len(rows)}, &st, explain, outer, inner), nil
		}
	})
}

func (s *Server) handleSelectOuterJoin(w http.ResponseWriter, r *http.Request) {
	var req SelectOuterJoinRequest
	s.serve(w, r, "select-outer-join", &req, func() ([]*dataset, func(context.Context) (QueryResponse, error)) {
		outer, inner := s.lookup(req.Outer), s.lookup(req.Inner)
		return []*dataset{outer, inner}, func(ctx context.Context) (QueryResponse, error) {
			var st twoknn.Stats
			opts, explain := queryOpts(ctx, &req.Common, &st)
			pairs, err := twoknn.SelectOuterJoin(source(outer), source(inner), req.F.Point(), req.KSel, req.KJoin, opts...)
			if err != nil {
				return QueryResponse{}, err
			}
			rows := pairRows(outer, inner, pairs)
			return finish(QueryResponse{Pairs: rows, Count: len(rows)}, &st, explain, outer, inner), nil
		}
	})
}

func (s *Server) handleTwoSelects(w http.ResponseWriter, r *http.Request) {
	var req TwoSelectsRequest
	s.serve(w, r, "two-selects", &req, func() ([]*dataset, func(context.Context) (QueryResponse, error)) {
		d := s.lookup(req.Dataset)
		return []*dataset{d}, func(ctx context.Context) (QueryResponse, error) {
			var st twoknn.Stats
			opts, explain := queryOpts(ctx, &req.Common, &st)
			pts, err := twoknn.TwoSelects(source(d), req.F1.Point(), req.K1, req.F2.Point(), req.K2, opts...)
			if err != nil {
				return QueryResponse{}, err
			}
			rows := pointRows(d, pts)
			return finish(QueryResponse{Points: rows, Count: len(rows)}, &st, explain, d), nil
		}
	})
}

func (s *Server) handleUnchainedJoins(w http.ResponseWriter, r *http.Request) {
	var req UnchainedJoinsRequest
	s.serve(w, r, "unchained-joins", &req, func() ([]*dataset, func(context.Context) (QueryResponse, error)) {
		a, b, c := s.lookup(req.A), s.lookup(req.B), s.lookup(req.C)
		return []*dataset{a, b, c}, func(ctx context.Context) (QueryResponse, error) {
			var st twoknn.Stats
			opts, explain := queryOpts(ctx, &req.Common, &st)
			ts, err := twoknn.UnchainedJoins(source(a), source(b), source(c), req.KAB, req.KCB, opts...)
			if err != nil {
				return QueryResponse{}, err
			}
			rows := tripleRows(a, b, c, ts)
			return finish(QueryResponse{Triples: rows, Count: len(rows)}, &st, explain, a, b, c), nil
		}
	})
}

func (s *Server) handleChainedJoins(w http.ResponseWriter, r *http.Request) {
	var req ChainedJoinsRequest
	s.serve(w, r, "chained-joins", &req, func() ([]*dataset, func(context.Context) (QueryResponse, error)) {
		a, b, c := s.lookup(req.A), s.lookup(req.B), s.lookup(req.C)
		return []*dataset{a, b, c}, func(ctx context.Context) (QueryResponse, error) {
			var st twoknn.Stats
			opts, explain := queryOpts(ctx, &req.Common, &st)
			ts, err := twoknn.ChainedJoins(source(a), source(b), source(c), req.KAB, req.KBC, opts...)
			if err != nil {
				return QueryResponse{}, err
			}
			rows := tripleRows(a, b, c, ts)
			return finish(QueryResponse{Triples: rows, Count: len(rows)}, &st, explain, a, b, c), nil
		}
	})
}

// mutable resolves a dataset name to its backing mutable relation. Sharded
// datasets are rejected: mutation routing across shards (re-partitioning on
// insert, cross-shard removes) is an open item, and silently mutating one
// shard would corrupt the partition.
func (s *Server) mutable(name string) (*dataset, *twoknn.Relation, error) {
	d := s.lookup(name)
	if d == nil {
		return nil, nil, fmt.Errorf("server: unknown dataset %q", name)
	}
	rel, ok := d.src.(*twoknn.Relation)
	if !ok {
		return nil, nil, fmt.Errorf("server: dataset %q is sharded; sharded datasets do not accept mutations", name)
	}
	return d, rel, nil
}

// serveMutation is the lifecycle shared by the data routes: strict decode,
// dataset resolution (mutability check included), admission, and the
// mutation itself. Mutations run under the same per-dataset gate as queries
// — a saturated dataset sheds writes too — but not under the request
// deadline: once admitted, a mutation batch is small and always completes.
func (s *Server) serveMutation(w http.ResponseWriter, r *http.Request, route string, req Request,
	dataset func() string, apply func(d *dataset, rel *twoknn.Relation) MutateResponse) {
	m := s.metrics.route(route)
	m.requests.Add(1)

	if err := DecodeRequest(r.Body, req); err != nil {
		m.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad_request"})
		return
	}
	d, rel, err := s.mutable(dataset())
	if err != nil {
		m.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad_request"})
		return
	}
	release, ok := admit(d)
	if !ok {
		s.shed(w, m, s.retryAfterFor(d), fmt.Errorf("server: dataset admission gate full"))
		return
	}
	defer release()

	resp := apply(d, rel)
	m.ok.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	s.serveMutation(w, r, "data-insert", &req, func() string { return req.Dataset },
		func(d *dataset, rel *twoknn.Relation) MutateResponse {
			pts := make([]twoknn.Point, len(req.Points))
			for i, p := range req.Points {
				pts[i] = p.Point()
			}
			ids := rel.Insert(pts...)
			return MutateResponse{IDs: ids, Epoch: rel.Epoch(), Len: rel.Len()}
		})
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req RemoveRequest
	s.serveMutation(w, r, "data-remove", &req, func() string { return req.Dataset },
		func(d *dataset, rel *twoknn.Relation) MutateResponse {
			removed := rel.Remove(req.IDs...)
			return MutateResponse{Removed: removed, Epoch: rel.Epoch(), Len: rel.Len()}
		})
}

func (s *Server) handleRangeInnerJoin(w http.ResponseWriter, r *http.Request) {
	var req RangeInnerJoinRequest
	s.serve(w, r, "range-inner-join", &req, func() ([]*dataset, func(context.Context) (QueryResponse, error)) {
		outer, inner := s.lookup(req.Outer), s.lookup(req.Inner)
		return []*dataset{outer, inner}, func(ctx context.Context) (QueryResponse, error) {
			var st twoknn.Stats
			opts, explain := queryOpts(ctx, &req.Common, &st)
			pairs, err := twoknn.RangeInnerJoin(source(outer), source(inner), req.Range.Rect(), req.KJoin, opts...)
			if err != nil {
				return QueryResponse{}, err
			}
			rows := pairRows(outer, inner, pairs)
			return finish(QueryResponse{Pairs: rows, Count: len(rows)}, &st, explain, outer, inner), nil
		}
	})
}
