package server_test

// Remote datasets behind the serving front-end: a coordinator Server holding
// a *twoknn.RemoteRelation must answer byte-identically to the same points
// served as a single relation, surface the transport envelope on /metrics,
// and map an exhausted replica set to 503 + Retry-After (honoring the
// per-dataset retry_after_ms override). Fault-arming tests never run in
// parallel: the injector is process-global.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	twoknn "repro"
	"repro/internal/fault"
	"repro/internal/server"
)

// remoteMesh is a 2-shard × 2-replica shard fleet plus a coordinator server
// that registers it as "mesh" next to a single-relation oracle "oracle".
type remoteMesh struct {
	srv       *server.Server
	ts        *httptest.Server
	endpoints [][]string // per shard, per replica
}

func newRemoteMesh(t testing.TB, cfg server.Config, dopts server.DatasetOptions) *remoteMesh {
	t.Helper()
	outer, _, _ := testPoints(t)

	const shards, replicas = 2, 2
	endpoints := make([][]string, shards)
	for s := 0; s < shards; s++ {
		h, err := twoknn.NewShardHandler("mesh", outer, s, shards, twoknn.WithBlockCapacity(16))
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < replicas; r++ {
			ep := httptest.NewServer(h)
			t.Cleanup(ep.Close)
			endpoints[s] = append(endpoints[s], ep.URL)
		}
	}

	rcfg := &twoknn.RemoteConfig{
		ProbeTimeout:    2 * time.Second,
		RetryBackoff:    time.Millisecond,
		BreakerCooldown: 50 * time.Millisecond,
	}
	rr, err := twoknn.DialRemote(context.Background(), "mesh", endpoints, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := twoknn.NewRelation("oracle", outer)
	if err != nil {
		t.Fatal(err)
	}

	m := &remoteMesh{srv: server.New(cfg), endpoints: endpoints}
	if err := m.srv.RegisterWithOptions("mesh", rr, dopts); err != nil {
		t.Fatal(err)
	}
	if err := m.srv.Register("oracle", oracle); err != nil {
		t.Fatal(err)
	}
	m.ts = httptest.NewServer(m.srv.Handler())
	t.Cleanup(m.ts.Close)
	return m
}

func (m *remoteMesh) metrics(t testing.TB) server.MetricsResponse {
	t.Helper()
	resp, err := http.Get(m.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mx server.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mx); err != nil {
		t.Fatal(err)
	}
	return mx
}

// TestRemoteDatasetDifferential holds the served remote dataset
// byte-identical to the single-relation oracle on the same points, across a
// select, a self-join and a batch.
func TestRemoteDatasetDifferential(t *testing.T) {
	m := newRemoteMesh(t, server.Config{}, server.DatasetOptions{})

	query := func(route string, req server.Request) server.QueryResponse {
		t.Helper()
		res := send(t, m.ts, route, req, nil)
		if res.status != http.StatusOK {
			t.Fatalf("POST %s: status %d, body %s", route, res.status, res.body)
		}
		var out server.QueryResponse
		if err := json.Unmarshal(res.body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	for _, k := range []int{1, 5, 17} {
		got := query("knn-select", &server.KNNSelectRequest{Dataset: "mesh", F: focal, K: k})
		want := query("knn-select", &server.KNNSelectRequest{Dataset: "oracle", F: focal, K: k})
		diffRows(t, got.Points, want.Points, got.Count)
	}

	got := query("knn-join", &server.KNNJoinRequest{Outer: "mesh", Inner: "mesh", K: 2})
	want := query("knn-join", &server.KNNJoinRequest{Outer: "oracle", Inner: "oracle", K: 2})
	diffRows(t, got.Pairs, want.Pairs, got.Count)

	gb := query("knn-select-batch", &server.KNNSelectBatchRequest{
		Dataset: "mesh", Focals: []server.PointArg{focal, focal2}, K: 4})
	wb := query("knn-select-batch", &server.KNNSelectBatchRequest{
		Dataset: "oracle", Focals: []server.PointArg{focal, focal2}, K: 4})
	if canonical(t, gb.Batches) != canonical(t, wb.Batches) {
		t.Errorf("batch route diverges:\nremote: %v\noracle: %v", gb.Batches, wb.Batches)
	}

	mx := m.metrics(t)
	dm, ok := mx.Datasets["mesh"]
	if !ok {
		t.Fatal("no mesh dataset in /metrics")
	}
	if dm.Shards != 2 || len(dm.Remote) != 2 {
		t.Errorf("remote metrics: shards=%d remote=%d entries", dm.Shards, len(dm.Remote))
	}
	var attempts int64
	for _, sh := range dm.Remote {
		for _, ep := range sh.Endpoints {
			attempts += ep.Attempts
		}
	}
	if attempts == 0 {
		t.Error("remote envelope recorded no endpoint attempts")
	}
	if dm.Stats.PointsCompared == 0 {
		t.Error("wire-reported shard stats did not fold into the dataset totals")
	}
}

// TestRemoteDatasetUnavailable503 kills every replica of shard 0 and
// requires the coordinator to fail closed: 503, code shard_unavailable, the
// dataset's retry_after_ms override on the Retry-After header, and the
// route's unavailable counter bumped — while the oracle dataset keeps
// serving 200s.
func TestRemoteDatasetUnavailable503(t *testing.T) {
	m := newRemoteMesh(t, server.Config{},
		server.DatasetOptions{RetryAfterMS: 7000})

	dead := map[string]bool{}
	for _, ep := range m.endpoints[0] {
		dead[ep] = true
	}
	fault.Arm(&fault.Injector{DropProbe: func(ep string) bool { return dead[ep] }})
	t.Cleanup(fault.Disarm)

	res := send(t, m.ts, "knn-select", &server.KNNSelectRequest{Dataset: "mesh", F: focal, K: 5}, nil)
	if res.status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, body %s", res.status, res.body)
	}
	if e := decodeError(t, res.body); e.Code != "shard_unavailable" {
		t.Errorf("error code %q", e.Code)
	}
	if ra := res.header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After %q, want the dataset's 7s override", ra)
	}

	if res := send(t, m.ts, "knn-select", &server.KNNSelectRequest{Dataset: "oracle", F: focal, K: 5}, nil); res.status != http.StatusOK {
		t.Errorf("oracle dataset degraded too: status %d", res.status)
	}

	mx := m.metrics(t)
	if rm := mx.Routes["knn-select"]; rm.Unavailable == 0 {
		t.Errorf("route metrics: %+v, want unavailable > 0", rm)
	}

	// With shard 0's replicas back, the dataset recovers (breaker cooldown
	// is 50ms; retries probe through half-open breakers).
	fault.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res := send(t, m.ts, "knn-select", &server.KNNSelectRequest{Dataset: "mesh", F: focal, K: 5}, nil)
		if res.status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dataset never recovered; last status %d body %s", res.status, res.body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRemoteDatasetFailoverKeepsServing drops only the preferred replica of
// each shard: answers must stay 200 and exact, with failovers surfacing in
// the /metrics envelope.
func TestRemoteDatasetFailoverKeepsServing(t *testing.T) {
	m := newRemoteMesh(t, server.Config{}, server.DatasetOptions{})

	dead := map[string]bool{}
	for _, reps := range m.endpoints {
		dead[reps[0]] = true
	}
	fault.Arm(&fault.Injector{DropProbe: func(ep string) bool { return dead[ep] }})
	t.Cleanup(fault.Disarm)

	query := func(dataset string) server.QueryResponse {
		t.Helper()
		res := send(t, m.ts, "knn-select", &server.KNNSelectRequest{Dataset: dataset, F: focal, K: 9}, nil)
		if res.status != http.StatusOK {
			t.Fatalf("dataset %s: status %d, body %s", dataset, res.status, res.body)
		}
		var out server.QueryResponse
		if err := json.Unmarshal(res.body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	got, want := query("mesh"), query("oracle")
	diffRows(t, got.Points, want.Points, got.Count)

	var failovers int64
	for _, sh := range m.metrics(t).Datasets["mesh"].Remote {
		failovers += sh.Failovers
	}
	if failovers == 0 {
		t.Error("no failovers recorded despite dead primaries")
	}
}

// TestPerDatasetTimeouts covers the budget rule end to end: a dataset's
// max_timeout_ms caps even an explicit request timeout (504), its
// timeout_ms applies when the request carries none, and an uncapped dataset
// still answers under the server default.
func TestPerDatasetTimeouts(t *testing.T) {
	outer, _, _ := testPoints(t)
	mk := func(name string) *twoknn.Relation {
		rel, err := twoknn.NewRelation(name, outer, twoknn.WithBlockCapacity(16))
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	srv := server.New(server.Config{DefaultTimeout: 10 * time.Second})
	if err := srv.RegisterWithOptions("capped", mk("capped"), server.DatasetOptions{MaxTimeoutMS: 80}); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterWithOptions("eager", mk("eager"), server.DatasetOptions{DefaultTimeoutMS: 80}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("plain", mk("plain")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Every block scan sleeps, so any query outlasts an 80ms budget but
	// finishes well inside the 10s server default.
	fault.Arm(&fault.Injector{BlockScan: func(uint64) { time.Sleep(30 * time.Millisecond) }})
	t.Cleanup(fault.Disarm)

	req := func(dataset string, timeoutMS int64) wireResult {
		r := &server.KNNSelectRequest{Dataset: dataset, F: focal, K: 5}
		r.TimeoutMS = timeoutMS
		return send(t, ts, "knn-select", r, nil)
	}

	if res := req("capped", 60_000); res.status != http.StatusGatewayTimeout {
		t.Errorf("capped dataset ignored max_timeout_ms: status %d, body %s", res.status, res.body)
	}
	if res := req("eager", 0); res.status != http.StatusGatewayTimeout {
		t.Errorf("dataset default timeout not applied: status %d, body %s", res.status, res.body)
	}
	if res := req("eager", 60_000); res.status != http.StatusOK {
		t.Errorf("request timeout should override an uncapped dataset default: status %d, body %s", res.status, res.body)
	}
	if res := req("plain", 0); res.status != http.StatusOK {
		t.Errorf("uncapped dataset under server default: status %d, body %s", res.status, res.body)
	}
}
