package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	twoknn "repro"
	"repro/internal/server"
)

// Example shows the client side of the query service: requests are the same
// typed structs the server decodes, so a Go client needs no hand-written
// JSON. The server here is in-process; against a real knnserve, only the URL
// changes.
func Example() {
	rel, err := twoknn.NewRelation("demo", []twoknn.Point{
		{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 5, Y: 5}, {X: 9, Y: 9},
	})
	if err != nil {
		panic(err)
	}
	srv := server.New(server.Config{})
	if err := srv.Register("demo", rel); err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := &server.KNNSelectRequest{
		Dataset: "demo",
		F:       server.PointArg{X: 0, Y: 0},
		K:       2,
	}
	req.TimeoutMS = 500 // optional: shorten the server's budget
	body, err := server.EncodeRequest(req)
	if err != nil {
		panic(err)
	}

	resp, err := http.Post(ts.URL+"/v1/query/knn-select", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()

	var out server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(err)
	}
	fmt.Println("rows:", out.Count)
	for _, p := range out.Points {
		fmt.Printf("id=%d (%g, %g)\n", p.ID, p.X, p.Y)
	}
	// Output:
	// rows: 2
	// id=0 (1, 1)
	// id=1 (2, 2)
}
