package server

// White-box tests of the serving-side state PR 8 adds: the single-flight
// coalescer (deterministically, with a blockable compute), the per-dataset
// admission-gate override, and the dataset spec grammar's max_inflight
// segment. The end-to-end behavior rides through batch_route_test.go.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	twoknn "repro"
	"repro/internal/dataload"
)

// TestSingleFlightCoalesces blocks a leader mid-compute, piles followers on
// the same key, and asserts exactly one evaluation ran and every caller got
// its result.
func TestSingleFlightCoalesces(t *testing.T) {
	s := New(Config{})
	var computes atomic.Int32
	started := make(chan struct{})
	unblock := make(chan struct{})

	const followers = 8
	var wg sync.WaitGroup
	results := make([]QueryResponse, followers+1)
	errs := make([]error, followers+1)
	run := func(i int) {
		defer wg.Done()
		results[i], errs[i] = s.singleFlight(context.Background(), "key", func(context.Context) (QueryResponse, error) {
			if computes.Add(1) == 1 {
				close(started)
			}
			<-unblock
			return QueryResponse{Count: 42}, nil
		})
	}

	wg.Add(1)
	go run(0)
	<-started // the leader is inside compute; everyone else must coalesce
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go run(i)
	}
	// Followers park on the leader's done channel; a different key is
	// unaffected and computes immediately.
	other, err := s.singleFlight(context.Background(), "other", func(context.Context) (QueryResponse, error) {
		return QueryResponse{Count: 7}, nil
	})
	if err != nil || other.Count != 7 {
		t.Fatalf("unrelated key blocked by the flight: %v %v", other, err)
	}
	for { // release the leader only once every follower is parked
		s.flightMu.Lock()
		parked := s.flights["key"].waiters.Load()
		s.flightMu.Unlock()
		if parked == followers {
			break
		}
		runtime.Gosched()
	}
	close(unblock)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computations for %d concurrent identical calls, want 1", n, followers+1)
	}
	for i := range results {
		if errs[i] != nil || results[i].Count != 42 {
			t.Fatalf("caller %d: %v %v", i, results[i], errs[i])
		}
	}

	// The flight is gone: a later call recomputes rather than reusing.
	_, err = s.singleFlight(context.Background(), "key", func(context.Context) (QueryResponse, error) {
		computes.Add(1)
		return QueryResponse{}, nil
	})
	if err != nil || computes.Load() != 2 {
		t.Fatalf("sequential call did not recompute: computes=%d err=%v", computes.Load(), err)
	}
}

// TestSingleFlightWaiterCancel: a follower whose context dies while the
// leader computes gives up with the engine's cancellation error (504), and
// the leader is unaffected.
func TestSingleFlightWaiterCancel(t *testing.T) {
	s := New(Config{})
	started := make(chan struct{})
	unblock := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.singleFlight(context.Background(), "key", func(context.Context) (QueryResponse, error) {
			close(started)
			<-unblock
			return QueryResponse{Count: 1}, nil
		})
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.singleFlight(ctx, "key", func(context.Context) (QueryResponse, error) {
		t.Error("follower must not compute")
		return QueryResponse{}, nil
	})
	if !errors.Is(err, twoknn.ErrQueryCanceled) {
		t.Fatalf("canceled waiter: %v, want ErrQueryCanceled", err)
	}

	close(unblock)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
}

// TestRegisterInflightOverride checks the three DatasetOptions.MaxInflight
// regimes against the server-wide default.
func TestRegisterInflightOverride(t *testing.T) {
	sp, err := dataload.Parse("uniform:n=50,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sp.Points()
	if err != nil {
		t.Fatal(err)
	}
	rel := func(name string) *twoknn.Relation {
		r, err := twoknn.NewRelation(name, pts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	s := New(Config{MaxInflight: 4})
	for name, o := range map[string]DatasetOptions{
		"inherit":  {},
		"override": {MaxInflight: 2},
		"ungated":  {MaxInflight: -1},
	} {
		if err := s.RegisterWithOptions(name, rel(name), o); err != nil {
			t.Fatal(err)
		}
	}
	for name, want := range map[string]int{"inherit": 4, "override": 2, "ungated": 0} {
		d := s.lookup(name)
		if got := cap(d.gate); got != want {
			t.Errorf("dataset %q: gate capacity %d, want %d", name, got, want)
		}
		if want == 0 && d.gate != nil {
			t.Errorf("dataset %q: expected no gate", name)
		}
	}
}

// TestSplitDatasetArgOptions covers the max_inflight spec grammar.
func TestSplitDatasetArgOptions(t *testing.T) {
	name, spec, opts, err := SplitDatasetArgOptions("trips=uniform:n=100,seed=1,max_inflight=8")
	if err != nil {
		t.Fatal(err)
	}
	if name != "trips" || spec.N != 100 || spec.Seed != 1 || opts.MaxInflight != 8 {
		t.Fatalf("parsed name=%q spec=%+v opts=%+v", name, spec, opts)
	}

	// The segment works anywhere in the option list, and a negative value
	// (gate disabled) parses.
	_, _, opts, err = SplitDatasetArgOptions("trips=uniform:max_inflight=-1,n=100,seed=1")
	if err != nil || opts.MaxInflight != -1 {
		t.Fatalf("mid-list segment: opts=%+v err=%v", opts, err)
	}

	// No segment: zero value, spec untouched.
	_, spec, opts, err = SplitDatasetArgOptions("trips=uniform:n=100,seed=1")
	if err != nil || opts.MaxInflight != 0 || spec.N != 100 {
		t.Fatalf("plain spec: spec=%+v opts=%+v err=%v", spec, opts, err)
	}

	// Zero and non-numeric values are rejected.
	for _, bad := range []string{
		"trips=uniform:n=100,max_inflight=0",
		"trips=uniform:n=100,max_inflight=lots",
	} {
		if _, _, _, err := SplitDatasetArgOptions(bad); err == nil {
			t.Errorf("%q: expected an error", bad)
		}
	}
}
