package server

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	twoknn "repro"
)

// routeMetrics are one route's request counters, bumped atomically by the
// serving path and snapshotted by /metrics.
type routeMetrics struct {
	requests    atomic.Int64 // every request that reached the route
	ok          atomic.Int64 // 200
	badRequest  atomic.Int64 // 400 (malformed JSON, unknown dataset, k<=0)
	shed        atomic.Int64 // 429 (admission gate or bounded-pool shed)
	deadline    atomic.Int64 // 504 (deadline expired mid-query)
	unavailable atomic.Int64 // 503 (remote shard's replica set exhausted)
	panics      atomic.Int64 // 500 from an isolated worker panic
	internal    atomic.Int64 // 500, anything else
}

type metrics struct {
	start time.Time

	mu     sync.Mutex
	routes map[string]*routeMetrics
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), routes: make(map[string]*routeMetrics)}
}

// route returns (lazily creating) the counters for a route name.
func (m *metrics) route(name string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm, ok := m.routes[name]
	if !ok {
		rm = &routeMetrics{}
		m.routes[name] = rm
	}
	return rm
}

// RouteMetrics is one route's counters on the /metrics wire.
type RouteMetrics struct {
	Requests    int64 `json:"requests"`
	OK          int64 `json:"ok"`
	BadRequest  int64 `json:"bad_request"`
	Shed        int64 `json:"shed"`
	Deadline    int64 `json:"deadline"`
	Unavailable int64 `json:"unavailable"`
	Panic       int64 `json:"panic"`
	Internal    int64 `json:"internal"`
}

// ShardMetrics is one shard's slice of a sharded dataset on the /metrics
// wire (twoknn.ShardStats, flattened for JSON).
type ShardMetrics struct {
	Shard  int          `json:"shard"`
	Points int          `json:"points"`
	Ops    twoknn.Stats `json:"ops"`
}

// DatasetMetrics is one dataset's /metrics entry.
type DatasetMetrics struct {
	Points int    `json:"points"`
	Index  string `json:"index"`

	// Epoch is the dataset's current data version; the batch cache keys on
	// it, so a bump means every earlier cached result is unreachable.
	Epoch uint64 `json:"epoch"`

	// Delta is the mutable-relation residency snapshot — live delta points,
	// tombstones, lifetime mutation batches and background/explicit merges —
	// absent for sharded datasets, which do not accept mutations.
	Delta *twoknn.DeltaStats `json:"delta,omitempty"`

	// Shards and Policy are set for sharded datasets only.
	Shards int    `json:"shards,omitempty"`
	Policy string `json:"policy,omitempty"`

	// OutstandingSearchers is the engine's load/leak metric: searcher
	// handles currently out of the dataset's pools. Zero when no query is
	// in flight.
	OutstandingSearchers int `json:"outstanding_searchers"`

	// Inflight is the number of admission-gate slots currently held (0
	// when the server runs without MaxInflight).
	Inflight int `json:"inflight"`

	// CacheHits / CacheMisses are the dataset's lifetime result-cache
	// counters (the batch route's epoch-keyed cache), broken out of Stats
	// for dashboards; CacheEntries is the resident entry count.
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`

	// Stats accumulates the engine's operation counters over every request
	// this dataset participated in.
	Stats twoknn.Stats `json:"stats"`

	// ShardStats is the per-shard lifetime counter snapshot of a sharded
	// dataset (partition-balance signal), absent for single relations.
	ShardStats []ShardMetrics `json:"shard_stats,omitempty"`

	// Remote is the transport-envelope counter snapshot of a remote
	// dataset — per shard and per endpoint: attempts, retries, hedges and
	// hedge wins, breaker state and trips, failovers and exhaustions —
	// absent for in-process sources.
	Remote []twoknn.RemoteShardStats `json:"remote,omitempty"`
}

// MetricsResponse is the GET /metrics body.
type MetricsResponse struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	Datasets      map[string]DatasetMetrics `json:"datasets"`
	Routes        map[string]RouteMetrics   `json:"routes"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status   string `json:"status"`
	Datasets int    `json:"datasets"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	resp := MetricsResponse{
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Datasets:      make(map[string]DatasetMetrics),
		Routes:        make(map[string]RouteMetrics),
	}

	s.mu.RLock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	ds := make([]*dataset, 0, len(names))
	for _, n := range names {
		ds = append(ds, s.datasets[n])
	}
	s.mu.RUnlock()

	for _, d := range ds {
		snap := d.stats.Snapshot()
		dm := DatasetMetrics{
			Points:       d.src.Len(),
			Index:        d.src.IndexKind().String(),
			Inflight:     len(d.gate),
			CacheHits:    snap.CacheHits,
			CacheMisses:  snap.CacheMisses,
			CacheEntries: d.cache.Len(),
			Stats:        snap,
		}
		dm.Epoch = d.src.Epoch()
		switch r := d.src.(type) {
		case *twoknn.Relation:
			dm.OutstandingSearchers = r.OutstandingSearchers()
			ds := r.DeltaStats()
			dm.Delta = &ds
		case *twoknn.ShardedRelation:
			dm.OutstandingSearchers = r.OutstandingSearchers()
			dm.Shards = r.NumShards()
			dm.Policy = r.Policy().String()
			perShard, _ := r.Snapshot()
			dm.ShardStats = make([]ShardMetrics, len(perShard))
			for i, sh := range perShard {
				dm.ShardStats[i] = ShardMetrics{Shard: sh.Shard, Points: sh.Points, Ops: sh.Ops}
			}
		case *twoknn.RemoteRelation:
			// Searcher pools live in the shard processes; what the
			// coordinator owns is the transport envelope, surfaced whole.
			dm.Shards = r.NumShards()
			perShard, _ := r.Snapshot()
			dm.ShardStats = make([]ShardMetrics, len(perShard))
			for i, sh := range perShard {
				dm.ShardStats[i] = ShardMetrics{Shard: sh.Shard, Points: sh.Points, Ops: sh.Ops}
			}
			dm.Remote = r.RemoteStats()
		}
		resp.Datasets[d.name] = dm
	}

	s.metrics.mu.Lock()
	for name, rm := range s.metrics.routes {
		resp.Routes[name] = RouteMetrics{
			Requests:    rm.requests.Load(),
			OK:          rm.ok.Load(),
			BadRequest:  rm.badRequest.Load(),
			Shed:        rm.shed.Load(),
			Deadline:    rm.deadline.Load(),
			Unavailable: rm.unavailable.Load(),
			Panic:       rm.panics.Load(),
			Internal:    rm.internal.Load(),
		}
	}
	s.metrics.mu.Unlock()

	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	n := len(s.datasets)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Datasets: n})
}
