// Package server is the HTTP/JSON query front-end of the twoknn engine: it
// holds one query source (single, sharded or remote relation) per named
// dataset and routes every public entry point — including the batched
// kNN-select, whose route adds an epoch-keyed result cache and single-flight
// request coalescing — through typed request/response structs that carry
// stable int32 point IDs plus coordinates.
//
// The wire layer adds nothing to the answer — the differential battery in
// server_test.go holds every route byte-identical (after canonical sort) to
// the direct in-process call — and maps the engine's typed request-lifecycle
// errors onto statuses:
//
//	ErrSearchersExhausted  → 429 + Retry-After   (bounded pool shed load)
//	ErrQueryCanceled       → 504                 (deadline expired mid-query)
//	ErrShardUnavailable    → 503 + Retry-After   (remote replica set exhausted)
//	*QueryPanicError       → 500                 (worker panic, process lives)
//	ErrNilRelation, ErrNonPositiveK, malformed JSON → 400
//
// Admission control is two-layered: an optional per-dataset inflight gate
// sheds excess requests with an immediate 429 (never queueing them), and
// underneath it a dataset built with twoknn.WithMaxSearchers sheds via the
// engine's own bounded-pool deadline path. Every request runs under a
// context deadline resolved per dataset: the ceiling is the server budget
// lowered by every involved dataset's MaxTimeoutMS, and within it the
// request's timeout_ms (or, absent one, the smallest involved dataset's
// DefaultTimeoutMS) picks the actual deadline — so no query outlives its
// caller's patience or its dataset's latency contract.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	twoknn "repro"
	"repro/internal/qcache"
)

// Config parameterizes a Server.
type Config struct {
	// DefaultTimeout is the per-request evaluation budget; a request's
	// timeout_ms can only shorten it. Zero means 10 seconds.
	DefaultTimeout time.Duration

	// MaxInflight bounds the number of requests concurrently evaluating
	// against any one dataset; excess requests are shed with 429 +
	// Retry-After immediately instead of queueing. Zero leaves admission
	// to the engine's searcher pools alone.
	MaxInflight int

	// RetryAfter is the Retry-After hint on 429 responses, rounded up to
	// whole seconds. Zero means 1 second.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// dataset is one registered query source plus the serving-side state the
// engine does not carry: the admission gate, the coordinate→stable-ID
// render table the response codec resolves rows through, and the epoch-keyed
// result cache of the batch route.
type dataset struct {
	name string
	src  twoknn.Source

	// gate admits at most cap(gate) concurrent requests when non-nil;
	// TryAcquire semantics — a full gate sheds, never queues.
	gate chan struct{}

	// defaultTimeout, when positive, is this dataset's evaluation budget for
	// requests that carry no timeout_ms; maxTimeout, when positive, caps any
	// request's budget (even an explicit timeout_ms cannot exceed it);
	// retryAfter, when positive, overrides the server-wide Retry-After hint
	// on shed (429) and shard-unavailable (503) responses touching this
	// dataset.
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	retryAfter     time.Duration

	// table is the current render table; stale the moment src's epoch moves
	// past its tag, and rebuilt lazily by render(). Never nil after Register.
	table atomic.Pointer[renderTable]

	// cache memoizes per-focal batch results keyed by (epoch, focal, k,
	// shape); see internal/qcache. Entries from a stale epoch become
	// unreachable the moment src's epoch is bumped.
	cache *qcache.Cache

	// stats accumulates the engine's operation counters across every
	// request served from this dataset (atomic; see twoknn.WithStats).
	stats twoknn.Stats
}

// renderTable resolves result points to wire rows for one epoch of a
// dataset: coordinates → smallest stable ID (so co-located duplicates render
// deterministically no matter which copy an algorithm returned), and stable
// ID → row for cache hits, which rebuild responses without touching the
// engine. Mutable relations retire a table on every mutation batch; static
// and sharded sources keep their Register-time table forever.
type renderTable struct {
	epoch    uint64
	idOf     map[twoknn.Point]int32
	rowsByID map[int32]PointRow
}

func newRenderTable(epoch uint64, pts []twoknn.Point, ids []int32) *renderTable {
	t := &renderTable{
		epoch:    epoch,
		idOf:     make(map[twoknn.Point]int32, len(pts)),
		rowsByID: make(map[int32]PointRow, len(pts)),
	}
	for i, p := range pts {
		if old, ok := t.idOf[p]; !ok || ids[i] < old {
			t.idOf[p] = ids[i]
		}
		t.rowsByID[ids[i]] = PointRow{ID: ids[i], X: p.X, Y: p.Y}
	}
	return t
}

// row renders a result point with its stable ID.
func (t *renderTable) row(p twoknn.Point) PointRow {
	id, ok := t.idOf[p]
	if !ok {
		id = -1
	}
	return PointRow{ID: id, X: p.X, Y: p.Y}
}

// rows resolves cached stable IDs back to wire rows; ok is false when any ID
// is not in this table (the live set moved on), in which case the caller
// treats the cache entry as a miss and re-evaluates.
func (t *renderTable) rows(ids []int32) ([]PointRow, bool) {
	rows := make([]PointRow, len(ids))
	for i, id := range ids {
		r, ok := t.rowsByID[id]
		if !ok {
			return nil, false
		}
		rows[i] = r
	}
	return rows, true
}

// render returns a table no older than the epoch current when it was called,
// rebuilding from a coherent engine snapshot when a mutation has retired the
// stored one. Concurrent rebuilds race benignly: every stored table is
// self-consistent, and a last-writer tag that lags the live epoch only costs
// one extra rebuild.
func (d *dataset) render() *renderTable {
	epoch := d.src.Epoch()
	if t := d.table.Load(); t != nil && t.epoch == epoch {
		return t
	}
	var t *renderTable
	switch r := d.src.(type) {
	case *twoknn.Relation:
		pts, ids := r.PointsWithIDs()
		t = newRenderTable(epoch, pts, ids)
	case *twoknn.ShardedRelation:
		t = newRenderTable(epoch, r.Points(), r.PointIDs())
	case *twoknn.RemoteRelation:
		// Fetched once through the transport envelope and cached by the
		// relation; an unreachable shard leaves an empty table (rows then
		// render with ID -1) rather than failing the registration.
		t = newRenderTable(epoch, r.Points(), r.PointIDs())
	default: // Register rejects other source types
		t = newRenderTable(epoch, nil, nil)
	}
	d.table.Store(t)
	return t
}

// tryAcquire claims an admission slot; the zero gate always admits.
func (d *dataset) tryAcquire() bool {
	if d == nil || d.gate == nil {
		return true
	}
	select {
	case d.gate <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns an admission slot.
func (d *dataset) release() {
	if d != nil && d.gate != nil {
		<-d.gate
	}
}

// Server routes query requests against a registry of named datasets. Create
// with New, add datasets with Register, and serve Handler(); all three are
// safe for concurrent use (datasets may be registered while serving).
type Server struct {
	cfg     Config
	metrics *metrics

	mu       sync.RWMutex
	datasets map[string]*dataset

	// flights coalesces identical concurrent batch requests: the first
	// request with a key becomes the leader and evaluates; followers wait on
	// its done channel and share the response. Keys are the canonical
	// re-encoding of the decoded request, so "identical" means
	// field-for-field equal.
	flightMu sync.Mutex
	flights  map[string]*flightCall
}

// flightCall is one in-flight coalesced evaluation. waiters counts the
// followers currently parked on done (an observability hook; the coalescing
// tests synchronize on it).
type flightCall struct {
	done    chan struct{}
	waiters atomic.Int32
	resp    QueryResponse
	err     error
}

// New builds a Server with no datasets.
func New(cfg Config) *Server {
	return &Server{
		cfg:      cfg.withDefaults(),
		metrics:  newMetrics(),
		datasets: make(map[string]*dataset),
		flights:  make(map[string]*flightCall),
	}
}

// DatasetOptions are per-dataset overrides of the server-wide Config.
type DatasetOptions struct {
	// MaxInflight overrides Config.MaxInflight for this dataset: positive
	// bounds this dataset's concurrent requests, negative disables the gate
	// even when the server has one, zero inherits the server setting. The
	// knnserve dataset spec grammar sets it via a "max_inflight=N" option.
	MaxInflight int

	// CacheCapacity bounds the dataset's batch result cache in entries;
	// zero selects the qcache default.
	CacheCapacity int

	// DefaultTimeoutMS, when positive, is the evaluation budget (in
	// milliseconds) for requests against this dataset that carry no
	// timeout_ms of their own; zero inherits the server's DefaultTimeout.
	// The spec grammar sets it via "timeout_ms=N".
	DefaultTimeoutMS int64

	// MaxTimeoutMS, when positive, caps every request's budget against this
	// dataset in milliseconds — an explicit request timeout_ms cannot
	// exceed it (nor can the server default). The spec grammar sets it via
	// "max_timeout_ms=N".
	MaxTimeoutMS int64

	// RetryAfterMS, when positive, overrides the server-wide Retry-After
	// hint (in milliseconds, rounded up to whole seconds on the wire) on
	// 429 shed and 503 shard-unavailable responses touching this dataset.
	// The spec grammar sets it via "retry_after_ms=N".
	RetryAfterMS int64
}

// Register adds src under name, building the stable-ID mapping for response
// rows. Registering a name twice or a nil source is an error.
func (s *Server) Register(name string, src twoknn.Source) error {
	return s.RegisterWithOptions(name, src, DatasetOptions{})
}

// RegisterWithOptions is Register with per-dataset overrides.
func (s *Server) RegisterWithOptions(name string, src twoknn.Source, o DatasetOptions) error {
	if name == "" {
		return fmt.Errorf("server: dataset name must be non-empty")
	}
	if src == nil {
		return fmt.Errorf("server: dataset %q: %w", name, twoknn.ErrNilRelation)
	}

	switch src.(type) {
	case *twoknn.Relation, *twoknn.ShardedRelation, *twoknn.RemoteRelation:
	default:
		return fmt.Errorf("server: dataset %q has unsupported source type %T", name, src)
	}
	if o.DefaultTimeoutMS < 0 || o.MaxTimeoutMS < 0 || o.RetryAfterMS < 0 {
		return fmt.Errorf("server: dataset %q: negative timeout/retry-after override", name)
	}
	if o.DefaultTimeoutMS > 0 && o.MaxTimeoutMS > 0 && o.DefaultTimeoutMS > o.MaxTimeoutMS {
		return fmt.Errorf("server: dataset %q: timeout_ms %d exceeds max_timeout_ms %d",
			name, o.DefaultTimeoutMS, o.MaxTimeoutMS)
	}

	d := &dataset{
		name:           name,
		src:            src,
		cache:          qcache.New(o.CacheCapacity),
		defaultTimeout: time.Duration(o.DefaultTimeoutMS) * time.Millisecond,
		maxTimeout:     time.Duration(o.MaxTimeoutMS) * time.Millisecond,
		retryAfter:     time.Duration(o.RetryAfterMS) * time.Millisecond,
	}
	d.render() // build the initial table eagerly, off the serving path
	inflight := s.cfg.MaxInflight
	if o.MaxInflight != 0 {
		inflight = o.MaxInflight
	}
	if inflight > 0 {
		d.gate = make(chan struct{}, inflight)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.datasets[name]; dup {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	s.datasets[name] = d
	return nil
}

// DatasetNames returns the registered names, sorted.
func (s *Server) DatasetNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lookup resolves a dataset name; a miss returns nil (the handler passes the
// nil source into the engine, whose ErrNilRelation maps to 400).
func (s *Server) lookup(name string) *dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.datasets[name]
}

// Handler returns the routing handler:
//
//	POST /v1/query/knn-select         POST /v1/query/two-selects
//	POST /v1/query/knn-select-batch   POST /v1/query/unchained-joins
//	POST /v1/query/knn-join           POST /v1/query/chained-joins
//	POST /v1/query/select-inner-join  POST /v1/query/range-inner-join
//	POST /v1/query/select-outer-join
//	POST /v1/data/insert              POST /v1/data/remove
//	GET  /metrics                     GET  /healthz
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query/knn-select", s.handleKNNSelect)
	mux.HandleFunc("POST /v1/query/knn-select-batch", s.handleKNNSelectBatch)
	mux.HandleFunc("POST /v1/query/knn-join", s.handleKNNJoin)
	mux.HandleFunc("POST /v1/query/select-inner-join", s.handleSelectInnerJoin)
	mux.HandleFunc("POST /v1/query/select-outer-join", s.handleSelectOuterJoin)
	mux.HandleFunc("POST /v1/query/two-selects", s.handleTwoSelects)
	mux.HandleFunc("POST /v1/query/unchained-joins", s.handleUnchainedJoins)
	mux.HandleFunc("POST /v1/query/chained-joins", s.handleChainedJoins)
	mux.HandleFunc("POST /v1/query/range-inner-join", s.handleRangeInnerJoin)
	mux.HandleFunc("POST /v1/data/insert", s.handleInsert)
	mux.HandleFunc("POST /v1/data/remove", s.handleRemove)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// admit claims an admission slot on every distinct resolved dataset of the
// request (Try semantics, so no ordering concern — a full gate sheds
// immediately). On success the returned release undoes all claims; on
// failure nothing stays claimed and admit reports false.
func admit(ds ...*dataset) (release func(), ok bool) {
	seen := make(map[*dataset]bool, len(ds))
	claimed := make([]*dataset, 0, len(ds))
	for _, d := range ds {
		if d == nil || seen[d] {
			continue
		}
		seen[d] = true
		if !d.tryAcquire() {
			for _, c := range claimed {
				c.release()
			}
			return nil, false
		}
		claimed = append(claimed, d)
	}
	return func() {
		for _, c := range claimed {
			c.release()
		}
	}, true
}

// source unwraps a dataset into its engine source; nil datasets stay nil
// sources so the engine's ErrNilRelation taxonomy fires.
func source(d *dataset) twoknn.Source {
	if d == nil {
		return nil
	}
	return d.src
}

// serve is the request lifecycle every query handler runs: strict decode,
// admission, deadline budget, evaluation, and the error→status mapping.
// plan resolves the decoded request's datasets and returns the evaluation
// closure, which runs under the request context and fills the response
// envelope.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, route string, req Request,
	plan func() ([]*dataset, func(ctx context.Context) (QueryResponse, error))) {
	m := s.metrics.route(route)
	m.requests.Add(1)

	if err := DecodeRequest(r.Body, req); err != nil {
		m.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad_request"})
		return
	}
	datasets, run := plan()

	release, ok := admit(datasets...)
	if !ok {
		s.shed(w, m, s.retryAfterFor(datasets...), fmt.Errorf("server: dataset admission gate full"))
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.budgetFor(datasets, timeoutOf(req)))
	defer cancel()

	resp, err := run(ctx)
	if err != nil {
		s.writeQueryError(w, m, s.retryAfterFor(datasets...), err)
		return
	}
	m.ok.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// budgetFor resolves a request's evaluation budget against its datasets'
// latency contracts. The ceiling is the server's DefaultTimeout lowered by
// every involved dataset's MaxTimeout; within that ceiling the request's
// own timeout_ms wins when present, and otherwise the smallest involved
// dataset DefaultTimeout (falling back to the ceiling itself). A request
// can therefore always shorten its budget but never escape a dataset's cap.
func (s *Server) budgetFor(ds []*dataset, reqTimeoutMS int64) time.Duration {
	ceiling := s.cfg.DefaultTimeout
	for _, d := range ds {
		if d != nil && d.maxTimeout > 0 && d.maxTimeout < ceiling {
			ceiling = d.maxTimeout
		}
	}
	want := ceiling
	if reqTimeoutMS > 0 {
		want = time.Duration(reqTimeoutMS) * time.Millisecond
	} else {
		for _, d := range ds {
			if d != nil && d.defaultTimeout > 0 && d.defaultTimeout < want {
				want = d.defaultTimeout
			}
		}
	}
	if want < ceiling {
		return want
	}
	return ceiling
}

// retryAfterFor resolves the Retry-After hint for a response touching ds:
// the smallest positive per-dataset override, else the server-wide setting.
func (s *Server) retryAfterFor(ds ...*dataset) time.Duration {
	ra := time.Duration(0)
	for _, d := range ds {
		if d != nil && d.retryAfter > 0 && (ra == 0 || d.retryAfter < ra) {
			ra = d.retryAfter
		}
	}
	if ra == 0 {
		ra = s.cfg.RetryAfter
	}
	return ra
}

// timeoutOf extracts the embedded Common.TimeoutMS.
func timeoutOf(req Request) int64 {
	switch r := req.(type) {
	case *KNNSelectRequest:
		return r.TimeoutMS
	case *KNNSelectBatchRequest:
		return r.TimeoutMS
	case *KNNJoinRequest:
		return r.TimeoutMS
	case *SelectInnerJoinRequest:
		return r.TimeoutMS
	case *SelectOuterJoinRequest:
		return r.TimeoutMS
	case *TwoSelectsRequest:
		return r.TimeoutMS
	case *UnchainedJoinsRequest:
		return r.TimeoutMS
	case *ChainedJoinsRequest:
		return r.TimeoutMS
	case *RangeInnerJoinRequest:
		return r.TimeoutMS
	default:
		return 0
	}
}

// singleFlight coalesces concurrent evaluations sharing a key: the first
// caller computes under its own context, every concurrent caller with the
// same key waits for that result and shares it (response, error and all).
// The key is deleted before done closes, so a request arriving after the
// leader finished starts a fresh flight — coalescing only ever spans truly
// concurrent work and never serves stale answers (result reuse across time
// is the epoch-keyed cache's job). A waiter whose own context expires first
// gives up with the engine's cancellation error, mapping to 504.
func (s *Server) singleFlight(ctx context.Context, key string, compute func(context.Context) (QueryResponse, error)) (QueryResponse, error) {
	s.flightMu.Lock()
	if c, ok := s.flights[key]; ok {
		c.waiters.Add(1)
		s.flightMu.Unlock()
		defer c.waiters.Add(-1)
		select {
		case <-c.done:
			return c.resp, c.err
		case <-ctx.Done():
			return QueryResponse{}, fmt.Errorf("%w: %v while waiting on a coalesced request", twoknn.ErrQueryCanceled, ctx.Err())
		}
	}
	c := &flightCall{done: make(chan struct{})}
	s.flights[key] = c
	s.flightMu.Unlock()

	c.resp, c.err = compute(ctx)

	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(c.done)
	return c.resp, c.err
}

// shed writes the 429 shed-load response with its Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, m *routeMetrics, retryAfter time.Duration, err error) {
	m.shed.Add(1)
	w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error(), Code: "shed_load"})
}

// retryAfterSeconds renders a Retry-After duration as whole seconds,
// rounded up (the header's granularity).
func retryAfterSeconds(d time.Duration) string {
	return strconv.FormatInt(int64((d+time.Second-1)/time.Second), 10)
}

// writeQueryError maps the engine's typed error taxonomy onto HTTP statuses.
// Order matters: a bounded-pool shed error chains both ErrSearchersExhausted
// and ErrQueryCanceled, and the more specific shed-load mapping wins.
func (s *Server) writeQueryError(w http.ResponseWriter, m *routeMetrics, retryAfter time.Duration, err error) {
	var panicErr *twoknn.QueryPanicError
	switch {
	case errors.Is(err, twoknn.ErrSearchersExhausted):
		s.shed(w, m, retryAfter, err)
	case errors.Is(err, twoknn.ErrQueryCanceled):
		m.deadline.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: err.Error(), Code: "deadline"})
	case errors.Is(err, twoknn.ErrShardUnavailable):
		// A remote dataset's replica set is exhausted: the answer cannot be
		// exact, so the coordinator fails closed with 503 and invites a
		// retry once replicas recover or breakers half-open.
		m.unavailable.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error(), Code: "shard_unavailable"})
	case errors.As(err, &panicErr):
		m.panics.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Code: "panic"})
	case errors.Is(err, twoknn.ErrNilRelation), errors.Is(err, twoknn.ErrNonPositiveK):
		m.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad_request"})
	default:
		m.internal.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Code: "internal"})
	}
}
