package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	twoknn "repro"
)

// This file is the wire codec: one typed request struct per query route, the
// shared response envelope, and the strict JSON decoder every handler runs
// requests through. Decoding is strict by design — unknown fields, trailing
// data and oversized bodies are rejected — so a request either maps exactly
// onto a struct or fails with 400; FuzzRequestDecode holds the codec to "no
// panic, and every accepted request re-encodes and re-decodes to the same
// value".

// maxRequestBytes bounds a request body; queries are tiny, so anything
// larger is a client error (or abuse), not a query.
const maxRequestBytes = 1 << 20

// PointArg is a coordinate pair in a request (focal points).
type PointArg struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Point converts to the engine's point type.
func (p PointArg) Point() twoknn.Point { return twoknn.Point{X: p.X, Y: p.Y} }

// RectArg is a closed axis-aligned rectangle in a request (range
// predicates). Corner order is normalized server-side, like twoknn.NewRect.
type RectArg struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// Rect converts to the engine's rectangle type, normalizing corner order.
func (r RectArg) Rect() twoknn.Rect { return twoknn.NewRect(r.MinX, r.MinY, r.MaxX, r.MaxY) }

// Common carries the fields every query request accepts.
type Common struct {
	// TimeoutMS caps the request's evaluation budget in milliseconds. The
	// effective deadline is min(server budget, TimeoutMS); zero means the
	// server budget alone. Negative values are rejected.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Algorithm forces the evaluation strategy for the *-inner-join routes:
	// "auto" (default when empty), "conceptual", "counting" or
	// "block-marking". Other routes accept and ignore it, mirroring
	// twoknn.WithAlgorithm.
	Algorithm string `json:"algorithm,omitempty"`

	// Explain asks for an EXPLAIN rendering of the executed plan in the
	// response.
	Explain bool `json:"explain,omitempty"`
}

// validate is the codec-level check: structural validity only. Semantic
// validation (k > 0, dataset exists) is the engine's job — its typed errors
// map onto HTTP statuses in the handler layer.
func (c Common) validate() error {
	if c.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be non-negative, got %d", c.TimeoutMS)
	}
	switch c.Algorithm {
	case "", "auto", "conceptual", "counting", "block-marking":
		return nil
	default:
		return fmt.Errorf("unknown algorithm %q (want auto, conceptual, counting or block-marking)", c.Algorithm)
	}
}

// algorithmOption resolves the Algorithm field; validate has vetted it.
func (c Common) algorithmOption() twoknn.Algorithm {
	switch c.Algorithm {
	case "conceptual":
		return twoknn.AlgorithmConceptual
	case "counting":
		return twoknn.AlgorithmCounting
	case "block-marking":
		return twoknn.AlgorithmBlockMarking
	default:
		return twoknn.AlgorithmAuto
	}
}

// Request is the interface every typed request struct implements; Validate
// is the codec-level (structural) check run right after decoding.
type Request interface {
	Validate() error
}

// KNNSelectRequest asks for σ_{k,f}(dataset): POST /v1/query/knn-select.
type KNNSelectRequest struct {
	Dataset string   `json:"dataset"`
	F       PointArg `json:"f"`
	K       int      `json:"k"`
	Common
}

// Validate implements Request.
func (r *KNNSelectRequest) Validate() error { return r.Common.validate() }

// KNNSelectBatchRequest asks for σ_{k,f}(dataset) for every focal point of
// one batch: POST /v1/query/knn-select-batch. Results come back per focal in
// input order, each byte-identical to the knn-select route's answer for that
// focal; repeated focals are served from the dataset's epoch-keyed result
// cache, and identical concurrent requests coalesce into one evaluation.
type KNNSelectBatchRequest struct {
	Dataset string     `json:"dataset"`
	Focals  []PointArg `json:"focals"`
	K       int        `json:"k"`
	Common
}

// Validate implements Request.
func (r *KNNSelectBatchRequest) Validate() error { return r.Common.validate() }

// KNNJoinRequest asks for outer ⋈kNN inner: POST /v1/query/knn-join.
type KNNJoinRequest struct {
	Outer string `json:"outer"`
	Inner string `json:"inner"`
	K     int    `json:"k"`
	Common
}

// Validate implements Request.
func (r *KNNJoinRequest) Validate() error { return r.Common.validate() }

// SelectInnerJoinRequest asks for (outer ⋈kNN inner) ∩ (outer ×
// σ_{kSel,f}(inner)): POST /v1/query/select-inner-join.
type SelectInnerJoinRequest struct {
	Outer string   `json:"outer"`
	Inner string   `json:"inner"`
	F     PointArg `json:"f"`
	KJoin int      `json:"k_join"`
	KSel  int      `json:"k_sel"`
	Common
}

// Validate implements Request.
func (r *SelectInnerJoinRequest) Validate() error { return r.Common.validate() }

// SelectOuterJoinRequest asks for (σ_{kSel,f}(outer)) ⋈kNN inner: POST
// /v1/query/select-outer-join.
type SelectOuterJoinRequest struct {
	Outer string   `json:"outer"`
	Inner string   `json:"inner"`
	F     PointArg `json:"f"`
	KSel  int      `json:"k_sel"`
	KJoin int      `json:"k_join"`
	Common
}

// Validate implements Request.
func (r *SelectOuterJoinRequest) Validate() error { return r.Common.validate() }

// TwoSelectsRequest asks for σ_{k1,f1}(dataset) ∩ σ_{k2,f2}(dataset): POST
// /v1/query/two-selects.
type TwoSelectsRequest struct {
	Dataset string   `json:"dataset"`
	F1      PointArg `json:"f1"`
	K1      int      `json:"k1"`
	F2      PointArg `json:"f2"`
	K2      int      `json:"k2"`
	Common
}

// Validate implements Request.
func (r *TwoSelectsRequest) Validate() error { return r.Common.validate() }

// UnchainedJoinsRequest asks for (a ⋈kNN b) ∩B (c ⋈kNN b): POST
// /v1/query/unchained-joins.
type UnchainedJoinsRequest struct {
	A   string `json:"a"`
	B   string `json:"b"`
	C   string `json:"c"`
	KAB int    `json:"k_ab"`
	KCB int    `json:"k_cb"`
	Common
}

// Validate implements Request.
func (r *UnchainedJoinsRequest) Validate() error { return r.Common.validate() }

// ChainedJoinsRequest asks for the chain a→b→c: POST
// /v1/query/chained-joins.
type ChainedJoinsRequest struct {
	A   string `json:"a"`
	B   string `json:"b"`
	C   string `json:"c"`
	KAB int    `json:"k_ab"`
	KBC int    `json:"k_bc"`
	Common
}

// Validate implements Request.
func (r *ChainedJoinsRequest) Validate() error { return r.Common.validate() }

// RangeInnerJoinRequest asks for the Section 3 footnote-1 extension — pairs
// whose right point lies in the rectangle: POST /v1/query/range-inner-join.
type RangeInnerJoinRequest struct {
	Outer string  `json:"outer"`
	Inner string  `json:"inner"`
	Range RectArg `json:"range"`
	KJoin int     `json:"k_join"`
	Common
}

// Validate implements Request.
func (r *RangeInnerJoinRequest) Validate() error { return r.Common.validate() }

// InsertRequest appends points to a mutable dataset: POST /v1/data/insert.
// Only single (un-sharded) relations accept mutations; the route answers 400
// for sharded datasets.
type InsertRequest struct {
	Dataset string     `json:"dataset"`
	Points  []PointArg `json:"points"`
}

// Validate implements Request.
func (r *InsertRequest) Validate() error {
	if len(r.Points) == 0 {
		return fmt.Errorf("insert requires at least one point")
	}
	return nil
}

// RemoveRequest removes points from a mutable dataset by stable ID: POST
// /v1/data/remove. IDs that are not live are skipped, not errors — the
// response's removed count reports how many actually went away.
type RemoveRequest struct {
	Dataset string  `json:"dataset"`
	IDs     []int32 `json:"ids"`
}

// Validate implements Request.
func (r *RemoveRequest) Validate() error {
	if len(r.IDs) == 0 {
		return fmt.Errorf("remove requires at least one id")
	}
	for _, id := range r.IDs {
		if id < 0 {
			return fmt.Errorf("ids must be non-negative, got %d", id)
		}
	}
	return nil
}

// MutateResponse is the body of a successful mutation: the post-mutation
// epoch and cardinality, plus the route-specific effect (assigned IDs for
// inserts, removed count for removes). Any result cached under an earlier
// epoch is unreachable from here on.
type MutateResponse struct {
	// IDs are the stable IDs assigned to inserted points, in input order
	// (insert route only).
	IDs []int32 `json:"ids,omitempty"`

	// Removed is the number of live points actually removed (remove route
	// only; dead or unknown IDs don't count).
	Removed int `json:"removed"`

	// Epoch is the dataset's data version after the mutation.
	Epoch uint64 `json:"epoch"`

	// Len is the dataset's cardinality after the mutation.
	Len int `json:"len"`
}

// PointRow is one result point on the wire: the stable int32 point ID (input
// position in the dataset the point came from; -1 if unresolvable) plus its
// coordinates.
type PointRow struct {
	ID int32   `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// PairRow is one kNN-join result row.
type PairRow struct {
	Left  PointRow `json:"left"`
	Right PointRow `json:"right"`
}

// TripleRow is one two-join result row.
type TripleRow struct {
	A PointRow `json:"a"`
	B PointRow `json:"b"`
	C PointRow `json:"c"`
}

// QueryResponse is the shared response envelope; exactly one of Points,
// Pairs, Triples and Batches is set, matching the route's result shape. Rows
// come back in the engine's order (ascending (distance, X, Y) for selects,
// evaluation order for joins — canonical SortPairs/SortTriples order when
// any operand is sharded).
type QueryResponse struct {
	Points  []PointRow  `json:"points,omitempty"`
	Pairs   []PairRow   `json:"pairs,omitempty"`
	Triples []TripleRow `json:"triples,omitempty"`

	// Batches is the knn-select-batch result: one point list per focal, in
	// focal input order.
	Batches [][]PointRow `json:"batches,omitempty"`

	// Count is the number of result rows (len of the set field; total rows
	// across all Batches for the batch route), present even when the result
	// is empty.
	Count int `json:"count"`

	// Stats are the query's operation counters.
	Stats twoknn.Stats `json:"stats"`

	// Explain is the EXPLAIN rendering when the request asked for one.
	Explain string `json:"explain,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	// Error is the full error string, including the engine's typed
	// sentinel text (e.g. "twoknn: query canceled: ...").
	Error string `json:"error"`

	// Code is a stable machine-readable discriminator: "bad_request",
	// "shed_load", "deadline", "panic" or "internal".
	Code string `json:"code"`
}

// DecodeRequest strictly decodes a JSON request body into dst: unknown
// fields, trailing data, bodies over 1 MiB and structural invalidity
// (Validate) are errors.
func DecodeRequest(body io.Reader, dst Request) error {
	data, err := io.ReadAll(io.LimitReader(body, maxRequestBytes+1))
	if err != nil {
		return fmt.Errorf("reading request body: %w", err)
	}
	if len(data) > maxRequestBytes {
		return fmt.Errorf("request body exceeds %d bytes", maxRequestBytes)
	}
	return DecodeRequestBytes(data, dst)
}

// DecodeRequestBytes is DecodeRequest over an in-memory body (the form the
// fuzz target drives).
func DecodeRequestBytes(data []byte, dst Request) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	// A request is one JSON value; trailing non-space content is a
	// malformed request, not extra queries.
	if dec.More() {
		return fmt.Errorf("decoding request: trailing data after JSON value")
	}
	return dst.Validate()
}

// EncodeRequest renders a request struct back into the exact form
// DecodeRequestBytes accepts — the client-side encoder, and the round-trip
// partner the fuzz target checks losslessness with.
func EncodeRequest(req Request) ([]byte, error) {
	return json.Marshal(req)
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection is the only failure mode left
}
