package server

import (
	"fmt"
	"strings"

	twoknn "repro"
	"repro/internal/dataload"
)

// This file is the dataset-loading surface the repository's binaries share
// (cmd/knnserve, cmd/knnquery; cmd/knnbench generates through the same
// dataload specs via internal/bench): parse a spec, build the engine source,
// one code path everywhere.

// BuildOptions shape the engine backing a loaded dataset gets.
type BuildOptions struct {
	// Index selects the spatial index (default twoknn.GridIndex).
	Index twoknn.IndexKind

	// BlockCapacity is the per-block point target; 0 keeps the engine
	// default (64).
	BlockCapacity int

	// Shards > 1 builds a ShardedRelation with that many shards; 0 or 1
	// builds a single Relation.
	Shards int

	// Policy selects the partition for sharded datasets (default
	// HashSharding).
	Policy twoknn.ShardPolicy

	// MaxSearchers bounds the searcher pool (per shard for sharded
	// datasets); 0 leaves it unbounded. Bounded pools are the engine layer
	// of the server's admission control: beyond the bound, deadline-carrying
	// queries shed as ErrSearchersExhausted → 429.
	MaxSearchers int
}

// BuildSource materializes a dataset spec into a query source.
func BuildSource(name string, sp dataload.Spec, o BuildOptions) (twoknn.Source, error) {
	pts, err := sp.Points()
	if err != nil {
		return nil, fmt.Errorf("loading dataset %q (%s): %w", name, sp, err)
	}
	opts := []twoknn.RelationOption{twoknn.WithIndexKind(o.Index)}
	if o.BlockCapacity > 0 {
		opts = append(opts, twoknn.WithBlockCapacity(o.BlockCapacity))
	}
	if o.MaxSearchers > 0 {
		opts = append(opts, twoknn.WithMaxSearchers(o.MaxSearchers))
	}
	if o.Shards > 1 {
		opts = append(opts, twoknn.WithShardPolicy(o.Policy))
		return twoknn.NewShardedRelation(name, pts, o.Shards, opts...)
	}
	return twoknn.NewRelation(name, pts, opts...)
}

// SplitDatasetArg splits a -dataset flag value "name=spec" (e.g.
// "trips=berlinmod:n=20000,seed=1" or "sites=points.csv").
func SplitDatasetArg(s string) (name string, spec dataload.Spec, err error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return "", dataload.Spec{}, fmt.Errorf("dataset %q is not name=spec", s)
	}
	spec, err = dataload.Parse(rest)
	if err != nil {
		return "", dataload.Spec{}, fmt.Errorf("dataset %q: %w", name, err)
	}
	return name, spec, nil
}

// ParseIndexKind parses an index-kind flag value.
func ParseIndexKind(s string) (twoknn.IndexKind, error) {
	switch s {
	case "grid":
		return twoknn.GridIndex, nil
	case "quadtree":
		return twoknn.QuadtreeIndex, nil
	case "rtree":
		return twoknn.RTreeIndex, nil
	case "kdtree":
		return twoknn.KDTreeIndex, nil
	default:
		return 0, fmt.Errorf("unknown index kind %q (want grid, quadtree, rtree or kdtree)", s)
	}
}

// ParseShardPolicy parses a shard-policy flag value.
func ParseShardPolicy(s string) (twoknn.ShardPolicy, error) {
	switch s {
	case "hash":
		return twoknn.HashSharding, nil
	case "spatial":
		return twoknn.SpatialSharding, nil
	default:
		return 0, fmt.Errorf("unknown shard policy %q (want hash or spatial)", s)
	}
}

// ParseAlgorithm parses an algorithm flag value (the CLI form of the wire
// codec's Common.Algorithm field).
func ParseAlgorithm(s string) (twoknn.Algorithm, error) {
	switch s {
	case "auto":
		return twoknn.AlgorithmAuto, nil
	case "conceptual":
		return twoknn.AlgorithmConceptual, nil
	case "counting":
		return twoknn.AlgorithmCounting, nil
	case "block-marking":
		return twoknn.AlgorithmBlockMarking, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want auto, conceptual, counting or block-marking)", s)
	}
}
