package server

import (
	"fmt"
	"strconv"
	"strings"

	twoknn "repro"
	"repro/internal/dataload"
)

// This file is the dataset-loading surface the repository's binaries share
// (cmd/knnserve, cmd/knnquery; cmd/knnbench generates through the same
// dataload specs via internal/bench): parse a spec, build the engine source,
// one code path everywhere.

// BuildOptions shape the engine backing a loaded dataset gets.
type BuildOptions struct {
	// Index selects the spatial index (default twoknn.GridIndex).
	Index twoknn.IndexKind

	// BlockCapacity is the per-block point target; 0 keeps the engine
	// default (64).
	BlockCapacity int

	// Shards > 1 builds a ShardedRelation with that many shards; 0 or 1
	// builds a single Relation.
	Shards int

	// Policy selects the partition for sharded datasets (default
	// HashSharding).
	Policy twoknn.ShardPolicy

	// MaxSearchers bounds the searcher pool (per shard for sharded
	// datasets); 0 leaves it unbounded. Bounded pools are the engine layer
	// of the server's admission control: beyond the bound, deadline-carrying
	// queries shed as ErrSearchersExhausted → 429.
	MaxSearchers int
}

// BuildSource materializes a dataset spec into a query source.
func BuildSource(name string, sp dataload.Spec, o BuildOptions) (twoknn.Source, error) {
	pts, err := sp.Points()
	if err != nil {
		return nil, fmt.Errorf("loading dataset %q (%s): %w", name, sp, err)
	}
	opts := []twoknn.RelationOption{twoknn.WithIndexKind(o.Index)}
	if o.BlockCapacity > 0 {
		opts = append(opts, twoknn.WithBlockCapacity(o.BlockCapacity))
	}
	if o.MaxSearchers > 0 {
		opts = append(opts, twoknn.WithMaxSearchers(o.MaxSearchers))
	}
	if o.Shards > 1 {
		opts = append(opts, twoknn.WithShardPolicy(o.Policy))
		return twoknn.NewShardedRelation(name, pts, o.Shards, opts...)
	}
	return twoknn.NewRelation(name, pts, opts...)
}

// SplitDatasetArg splits a -dataset flag value "name=spec" (e.g.
// "trips=berlinmod:n=20000,seed=1" or "sites=points.csv").
func SplitDatasetArg(s string) (name string, spec dataload.Spec, err error) {
	name, spec, _, err = SplitDatasetArgOptions(s)
	return name, spec, err
}

// SplitDatasetArgOptions is SplitDatasetArg plus the serving-side options
// the spec grammar carries beyond dataload's vocabulary: a "max_inflight=N"
// segment anywhere in the comma-separated option list overrides the
// server-wide admission bound for this dataset (N > 0 bounds it, N < 0
// disables the gate), e.g. "trips=berlinmod:n=20000,seed=1,max_inflight=8".
func SplitDatasetArgOptions(s string) (name string, spec dataload.Spec, opts DatasetOptions, err error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return "", dataload.Spec{}, DatasetOptions{}, fmt.Errorf("dataset %q is not name=spec", s)
	}
	rest, opts, err = extractDatasetOptions(rest)
	if err != nil {
		return "", dataload.Spec{}, DatasetOptions{}, fmt.Errorf("dataset %q: %w", name, err)
	}
	spec, err = dataload.Parse(rest)
	if err != nil {
		return "", dataload.Spec{}, DatasetOptions{}, fmt.Errorf("dataset %q: %w", name, err)
	}
	return name, spec, opts, nil
}

// extractDatasetOptions strips the serving-side option segments out of a
// spec string before dataload parses the remainder. The "kind:" head (when
// present) is kept aside so an option segment directly after the colon is
// recognized too.
func extractDatasetOptions(spec string) (string, DatasetOptions, error) {
	var opts DatasetOptions
	head, rest := "", spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		head, rest = spec[:i+1], spec[i+1:]
	}
	segs := strings.Split(rest, ",")
	kept := segs[:0]
	for _, seg := range segs {
		if v, ok := strings.CutPrefix(seg, "max_inflight="); ok {
			n, err := strconv.Atoi(v)
			if err != nil || n == 0 {
				return "", DatasetOptions{}, fmt.Errorf("max_inflight %q is not a non-zero integer", v)
			}
			opts.MaxInflight = n
			continue
		}
		kept = append(kept, seg)
	}
	return head + strings.Join(kept, ","), opts, nil
}

// ParseIndexKind parses an index-kind flag value.
func ParseIndexKind(s string) (twoknn.IndexKind, error) {
	switch s {
	case "grid":
		return twoknn.GridIndex, nil
	case "quadtree":
		return twoknn.QuadtreeIndex, nil
	case "rtree":
		return twoknn.RTreeIndex, nil
	case "kdtree":
		return twoknn.KDTreeIndex, nil
	default:
		return 0, fmt.Errorf("unknown index kind %q (want grid, quadtree, rtree or kdtree)", s)
	}
}

// ParseShardPolicy parses a shard-policy flag value.
func ParseShardPolicy(s string) (twoknn.ShardPolicy, error) {
	switch s {
	case "hash":
		return twoknn.HashSharding, nil
	case "spatial":
		return twoknn.SpatialSharding, nil
	default:
		return 0, fmt.Errorf("unknown shard policy %q (want hash or spatial)", s)
	}
}

// ParseAlgorithm parses an algorithm flag value (the CLI form of the wire
// codec's Common.Algorithm field).
func ParseAlgorithm(s string) (twoknn.Algorithm, error) {
	switch s {
	case "auto":
		return twoknn.AlgorithmAuto, nil
	case "conceptual":
		return twoknn.AlgorithmConceptual, nil
	case "counting":
		return twoknn.AlgorithmCounting, nil
	case "block-marking":
		return twoknn.AlgorithmBlockMarking, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want auto, conceptual, counting or block-marking)", s)
	}
}
