package server

import (
	"fmt"
	"strconv"
	"strings"

	twoknn "repro"
	"repro/internal/dataload"
)

// This file is the dataset-loading surface the repository's binaries share
// (cmd/knnserve, cmd/knnquery; cmd/knnbench generates through the same
// dataload specs via internal/bench): parse a spec, build the engine source,
// one code path everywhere.

// BuildOptions shape the engine backing a loaded dataset gets.
type BuildOptions struct {
	// Index selects the spatial index (default twoknn.GridIndex).
	Index twoknn.IndexKind

	// BlockCapacity is the per-block point target; 0 keeps the engine
	// default (64).
	BlockCapacity int

	// Shards > 1 builds a ShardedRelation with that many shards; 0 or 1
	// builds a single Relation.
	Shards int

	// Policy selects the partition for sharded datasets (default
	// HashSharding).
	Policy twoknn.ShardPolicy

	// MaxSearchers bounds the searcher pool (per shard for sharded
	// datasets); 0 leaves it unbounded. Bounded pools are the engine layer
	// of the server's admission control: beyond the bound, deadline-carrying
	// queries shed as ErrSearchersExhausted → 429.
	MaxSearchers int
}

// BuildSource materializes a dataset spec into a query source.
func BuildSource(name string, sp dataload.Spec, o BuildOptions) (twoknn.Source, error) {
	pts, err := sp.Points()
	if err != nil {
		return nil, fmt.Errorf("loading dataset %q (%s): %w", name, sp, err)
	}
	opts := []twoknn.RelationOption{twoknn.WithIndexKind(o.Index)}
	if o.BlockCapacity > 0 {
		opts = append(opts, twoknn.WithBlockCapacity(o.BlockCapacity))
	}
	if o.MaxSearchers > 0 {
		opts = append(opts, twoknn.WithMaxSearchers(o.MaxSearchers))
	}
	if o.Shards > 1 {
		opts = append(opts, twoknn.WithShardPolicy(o.Policy))
		return twoknn.NewShardedRelation(name, pts, o.Shards, opts...)
	}
	return twoknn.NewRelation(name, pts, opts...)
}

// SplitDatasetArg splits a -dataset flag value "name=spec" (e.g.
// "trips=berlinmod:n=20000,seed=1" or "sites=points.csv").
func SplitDatasetArg(s string) (name string, spec dataload.Spec, err error) {
	name, spec, _, err = SplitDatasetArgOptions(s)
	return name, spec, err
}

// SplitDatasetArgOptions is SplitDatasetArg plus the serving-side options
// the spec grammar carries beyond dataload's vocabulary, recognized as
// segments anywhere in the comma-separated option list:
//
//	max_inflight=N     per-dataset admission bound (N < 0 disables the gate)
//	timeout_ms=N       default evaluation budget for requests without one
//	max_timeout_ms=N   hard cap on any request's budget against this dataset
//	retry_after_ms=N   Retry-After hint on this dataset's 429/503 responses
//
// e.g. "trips=berlinmod:n=20000,seed=1,max_inflight=8,max_timeout_ms=500".
func SplitDatasetArgOptions(s string) (name string, spec dataload.Spec, opts DatasetOptions, err error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return "", dataload.Spec{}, DatasetOptions{}, fmt.Errorf("dataset %q is not name=spec", s)
	}
	rest, opts, err = extractDatasetOptions(rest)
	if err != nil {
		return "", dataload.Spec{}, DatasetOptions{}, fmt.Errorf("dataset %q: %w", name, err)
	}
	spec, err = dataload.Parse(rest)
	if err != nil {
		return "", dataload.Spec{}, DatasetOptions{}, fmt.Errorf("dataset %q: %w", name, err)
	}
	return name, spec, opts, nil
}

// extractDatasetOptions strips the serving-side option segments out of a
// spec string before dataload parses the remainder. The "kind:" head (when
// present) is kept aside so an option segment directly after the colon is
// recognized too.
func extractDatasetOptions(spec string) (string, DatasetOptions, error) {
	var opts DatasetOptions
	head, rest := "", spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		head, rest = spec[:i+1], spec[i+1:]
	}
	ms := func(key, v string) (int64, error) {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("%s %q is not a positive integer", key, v)
		}
		return n, nil
	}
	segs := strings.Split(rest, ",")
	kept := segs[:0]
	for _, seg := range segs {
		var err error
		switch {
		case strings.HasPrefix(seg, "max_inflight="):
			v := seg[len("max_inflight="):]
			n, aerr := strconv.Atoi(v)
			if aerr != nil || n == 0 {
				return "", DatasetOptions{}, fmt.Errorf("max_inflight %q is not a non-zero integer", v)
			}
			opts.MaxInflight = n
		case strings.HasPrefix(seg, "timeout_ms="):
			opts.DefaultTimeoutMS, err = ms("timeout_ms", seg[len("timeout_ms="):])
		case strings.HasPrefix(seg, "max_timeout_ms="):
			opts.MaxTimeoutMS, err = ms("max_timeout_ms", seg[len("max_timeout_ms="):])
		case strings.HasPrefix(seg, "retry_after_ms="):
			opts.RetryAfterMS, err = ms("retry_after_ms", seg[len("retry_after_ms="):])
		default:
			kept = append(kept, seg)
		}
		if err != nil {
			return "", DatasetOptions{}, err
		}
	}
	if opts.DefaultTimeoutMS > 0 && opts.MaxTimeoutMS > 0 && opts.DefaultTimeoutMS > opts.MaxTimeoutMS {
		return "", DatasetOptions{}, fmt.Errorf("timeout_ms %d exceeds max_timeout_ms %d",
			opts.DefaultTimeoutMS, opts.MaxTimeoutMS)
	}
	return head + strings.Join(kept, ","), opts, nil
}

// SplitDatasetArgRemote recognizes the remote dataset form of a -dataset
// flag value,
//
//	name=remote:shards=URL[|URL...][;URL[|URL...]...][,option...]
//
// where ';' separates shards and '|' separates a shard's replica endpoints
// (preferred first). The serving-side option segments of
// SplitDatasetArgOptions apply unchanged after the shard list. ok reports
// whether s is a remote spec at all; a non-remote spec returns ok=false
// with no error so callers fall through to the dataload grammar.
func SplitDatasetArgRemote(s string) (name string, shards [][]string, opts DatasetOptions, ok bool, err error) {
	name, rest, found := strings.Cut(s, "=")
	if !found || name == "" || !strings.HasPrefix(rest, "remote:") {
		return "", nil, DatasetOptions{}, false, nil
	}
	rest, opts, err = extractDatasetOptions(rest)
	if err != nil {
		return "", nil, DatasetOptions{}, true, fmt.Errorf("dataset %q: %w", name, err)
	}
	body := strings.TrimPrefix(rest, "remote:")
	list, found := strings.CutPrefix(body, "shards=")
	if !found {
		return "", nil, DatasetOptions{}, true, fmt.Errorf("dataset %q: remote spec %q wants remote:shards=URL;URL;...", name, body)
	}
	for i, shardSeg := range strings.Split(list, ";") {
		var replicas []string
		for _, u := range strings.Split(shardSeg, "|") {
			if u == "" {
				continue
			}
			replicas = append(replicas, u)
		}
		if len(replicas) == 0 {
			return "", nil, DatasetOptions{}, true, fmt.Errorf("dataset %q: shard %d has no endpoints", name, i)
		}
		shards = append(shards, replicas)
	}
	return name, shards, opts, true, nil
}

// ParseIndexKind parses an index-kind flag value.
func ParseIndexKind(s string) (twoknn.IndexKind, error) {
	switch s {
	case "grid":
		return twoknn.GridIndex, nil
	case "quadtree":
		return twoknn.QuadtreeIndex, nil
	case "rtree":
		return twoknn.RTreeIndex, nil
	case "kdtree":
		return twoknn.KDTreeIndex, nil
	default:
		return 0, fmt.Errorf("unknown index kind %q (want grid, quadtree, rtree or kdtree)", s)
	}
}

// ParseShardPolicy parses a shard-policy flag value.
func ParseShardPolicy(s string) (twoknn.ShardPolicy, error) {
	switch s {
	case "hash":
		return twoknn.HashSharding, nil
	case "spatial":
		return twoknn.SpatialSharding, nil
	default:
		return 0, fmt.Errorf("unknown shard policy %q (want hash or spatial)", s)
	}
}

// ParseAlgorithm parses an algorithm flag value (the CLI form of the wire
// codec's Common.Algorithm field).
func ParseAlgorithm(s string) (twoknn.Algorithm, error) {
	switch s {
	case "auto":
		return twoknn.AlgorithmAuto, nil
	case "conceptual":
		return twoknn.AlgorithmConceptual, nil
	case "counting":
		return twoknn.AlgorithmCounting, nil
	case "block-marking":
		return twoknn.AlgorithmBlockMarking, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want auto, conceptual, counting or block-marking)", s)
	}
}
