package server_test

// FuzzRequestDecode holds the wire codec to its contract over arbitrary
// bytes: decoding never panics, and any accepted request round-trips
// losslessly through EncodeRequest → DecodeRequestBytes. The seed corpus in
// testdata/fuzz covers every request shape plus the strictness edges
// (unknown fields, trailing data, wrong types).

import (
	"reflect"
	"testing"

	"repro/internal/server"
)

// requestFactories builds one fresh zero value of every request type; the
// fuzz target tries each shape against the input, mirroring how every route
// shares one decoder.
var requestFactories = []func() server.Request{
	func() server.Request { return new(server.KNNSelectRequest) },
	func() server.Request { return new(server.KNNSelectBatchRequest) },
	func() server.Request { return new(server.KNNJoinRequest) },
	func() server.Request { return new(server.SelectInnerJoinRequest) },
	func() server.Request { return new(server.SelectOuterJoinRequest) },
	func() server.Request { return new(server.TwoSelectsRequest) },
	func() server.Request { return new(server.UnchainedJoinsRequest) },
	func() server.Request { return new(server.ChainedJoinsRequest) },
	func() server.Request { return new(server.RangeInnerJoinRequest) },
	func() server.Request { return new(server.InsertRequest) },
	func() server.Request { return new(server.RemoveRequest) },
}

func FuzzRequestDecode(f *testing.F) {
	seeds := []string{
		`{"dataset":"trips","f":{"x":5000,"y":5000},"k":5}`,
		`{"dataset":"trips","focals":[{"x":5000,"y":5000},{"x":4000,"y":6000}],"k":5}`,
		`{"outer":"a","inner":"b","k":3,"timeout_ms":250}`,
		`{"outer":"a","inner":"b","f":{"x":1,"y":2},"k_join":3,"k_sel":8,"algorithm":"block-marking"}`,
		`{"outer":"a","inner":"b","f":{"x":1,"y":2},"k_sel":6,"k_join":3,"explain":true}`,
		`{"dataset":"e","f1":{"x":1,"y":2},"k1":7,"f2":{"x":3,"y":4},"k2":9}`,
		`{"a":"x","b":"y","c":"z","k_ab":2,"k_cb":2}`,
		`{"a":"x","b":"y","c":"z","k_ab":2,"k_bc":2}`,
		`{"outer":"a","inner":"b","range":{"min_x":0,"min_y":0,"max_x":10,"max_y":10},"k_join":3}`,
		`{"dataset":"trips","points":[{"x":1,"y":2},{"x":1,"y":2}]}`,
		`{"dataset":"trips","ids":[0,7,7,4099]}`,
		`{"dataset":"trips","ids":[-1]}`,
		`{"dataset":"trips","points":[]}`,
		`{"dataset":"trips","k":5,"frobnicate":true}`,
		`{"dataset":"trips","k":5} trailing`,
		`{"dataset":"trips","k":5,"timeout_ms":-7}`,
		`{"dataset":"trips","k":"five"}`,
		`{"dataset":"trips","algorithm":"psychic","k":5}`,
		`null`,
		`{}`,
		`[]`,
		`"just a string"`,
		`{"f":{"x":1e308,"y":-1e308},"dataset":"\u0000","k":-9999999}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mk := range requestFactories {
			req := mk()
			if err := server.DecodeRequestBytes(data, req); err != nil {
				continue // rejected inputs only need to not panic
			}
			enc, err := server.EncodeRequest(req)
			if err != nil {
				t.Fatalf("accepted request failed to encode: %v (input %q)", err, data)
			}
			again := mk()
			if err := server.DecodeRequestBytes(enc, again); err != nil {
				t.Fatalf("re-decoding own encoding %q failed: %v (input %q)", enc, err, data)
			}
			if !reflect.DeepEqual(req, again) {
				t.Fatalf("lossy round-trip for %T:\ninput  %q\nfirst  %#v\nwire   %q\nsecond %#v", req, data, req, enc, again)
			}
		}
	})
}
