package server_test

// End-to-end scenarios for POST /v1/query/knn-select-batch: the served batch
// is byte-identical per focal to the knn-select route's answers, repeated
// requests are served from the epoch-keyed result cache (hits visible in the
// response stats and /metrics), Invalidate() makes the cache miss again
// without changing answers, identical concurrent requests coalesce, and the
// error taxonomy matches the sequential route.

import (
	"encoding/json"
	"net/http"
	"reflect"
	"sync"
	"testing"

	twoknn "repro"
	"repro/internal/server"
)

// batchFocals mixes clustered, spread and duplicate focals, including one
// focal co-located with the shared test focal.
var batchFocals = []server.PointArg{
	{X: 5000, Y: 5000},
	{X: 5005, Y: 4995},
	{X: 1200, Y: 8800},
	{X: 5000, Y: 5000}, // duplicate of focal 0
	{X: -50, Y: 10100}, // out of bounds
}

func TestKNNSelectBatchRoute(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	for _, b := range backings {
		name := "outer-" + b.label
		src := reg.sources[name]
		t.Run(b.label, func(t *testing.T) {
			const k = 6
			resp := reg.query(t, "knn-select-batch", &server.KNNSelectBatchRequest{
				Dataset: name, Focals: batchFocals, K: k})
			if len(resp.Batches) != len(batchFocals) {
				t.Fatalf("%d batches for %d focals", len(resp.Batches), len(batchFocals))
			}
			total := 0
			for i, f := range batchFocals {
				pts, err := twoknn.KNNSelect(src, f.Point(), k)
				if err != nil {
					t.Fatal(err)
				}
				want := pointOracle(reg, name, pts)
				if !reflect.DeepEqual(resp.Batches[i], want) {
					t.Fatalf("focal %d diverges from the knn-select oracle:\nbatch  %v\noracle %v",
						i, resp.Batches[i], want)
				}
				total += len(want)
			}
			if resp.Count != total {
				t.Fatalf("count %d, total rows %d", resp.Count, total)
			}
			if resp.Stats.CacheMisses != int64(len(batchFocals)) || resp.Stats.CacheHits != 0 {
				t.Fatalf("first request: hits=%d misses=%d", resp.Stats.CacheHits, resp.Stats.CacheMisses)
			}

			// Identical repeat: served entirely from the cache, same rows.
			again := reg.query(t, "knn-select-batch", &server.KNNSelectBatchRequest{
				Dataset: name, Focals: batchFocals, K: k})
			if !reflect.DeepEqual(again.Batches, resp.Batches) || again.Count != resp.Count {
				t.Fatal("cached response diverges from the computed one")
			}
			if again.Stats.CacheHits != int64(len(batchFocals)) || again.Stats.CacheMisses != 0 {
				t.Fatalf("repeat request: hits=%d misses=%d", again.Stats.CacheHits, again.Stats.CacheMisses)
			}
			if again.Stats.Neighborhoods != 0 {
				t.Fatalf("repeat request ran %d neighborhood computations", again.Stats.Neighborhoods)
			}

			// Epoch bump: the cache misses again, answers stay identical.
			switch r := src.(type) {
			case *twoknn.Relation:
				r.Invalidate()
			case *twoknn.ShardedRelation:
				r.Invalidate()
			}
			after := reg.query(t, "knn-select-batch", &server.KNNSelectBatchRequest{
				Dataset: name, Focals: batchFocals, K: k})
			if after.Stats.CacheMisses != int64(len(batchFocals)) {
				t.Fatalf("post-invalidation request: hits=%d misses=%d", after.Stats.CacheHits, after.Stats.CacheMisses)
			}
			if !reflect.DeepEqual(after.Batches, resp.Batches) {
				t.Fatal("post-invalidation response diverges")
			}
		})
	}
}

// TestBatchRouteExplainAndStats: EXPLAIN bypasses the cache so the rendered
// plan reflects a real evaluation.
func TestBatchRouteExplainAndStats(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	req := &server.KNNSelectBatchRequest{Dataset: "outer-single", Focals: batchFocals, K: 4}
	reg.query(t, "knn-select-batch", req) // warm the cache

	req.Explain = true
	resp := reg.query(t, "knn-select-batch", req)
	if resp.Explain == "" {
		t.Fatal("explain requested but empty")
	}
	if resp.Stats.CacheHits != 0 || resp.Stats.Neighborhoods == 0 {
		t.Fatalf("explain must bypass the cache: hits=%d nbr=%d", resp.Stats.CacheHits, resp.Stats.Neighborhoods)
	}
}

// TestBatchRouteMetrics: the per-dataset cache counters surface on /metrics.
func TestBatchRouteMetrics(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	req := &server.KNNSelectBatchRequest{Dataset: "inner-single", Focals: batchFocals, K: 3}
	reg.query(t, "knn-select-batch", req)
	reg.query(t, "knn-select-batch", req)

	resp, err := http.Get(reg.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	dm := m.Datasets["inner-single"]
	if dm.CacheMisses != int64(len(batchFocals)) || dm.CacheHits != int64(len(batchFocals)) {
		t.Fatalf("metrics cache counters: hits=%d misses=%d, want %d/%d",
			dm.CacheHits, dm.CacheMisses, len(batchFocals), len(batchFocals))
	}
	// 4 distinct focals resident (the duplicate collapses onto one key).
	if dm.CacheEntries != 4 {
		t.Fatalf("metrics cache_entries=%d, want 4", dm.CacheEntries)
	}
	if rm := m.Routes["knn-select-batch"]; rm.Requests != 2 || rm.OK != 2 {
		t.Fatalf("route counters: %+v", rm)
	}
}

// TestBatchRouteConcurrent hammers one identical request from many
// goroutines (exercising single-flight and the cache under -race); every
// response must be 200 with identical rows.
func TestBatchRouteConcurrent(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	req := &server.KNNSelectBatchRequest{Dataset: "outer-hash3", Focals: batchFocals, K: 5}
	want := reg.query(t, "knn-select-batch", req).Batches

	const goroutines = 12
	responses := make([]server.QueryResponse, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			responses[g] = reg.query(t, "knn-select-batch", req)
		}(g)
	}
	wg.Wait()
	for g := range responses {
		if !reflect.DeepEqual(responses[g].Batches, want) {
			t.Fatalf("goroutine %d diverges", g)
		}
	}
}

// TestBatchRouteErrors: the sequential route's 400 taxonomy applies.
func TestBatchRouteErrors(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	for _, tc := range []struct {
		name string
		req  server.KNNSelectBatchRequest
	}{
		{"unknown dataset", server.KNNSelectBatchRequest{Dataset: "nope", Focals: batchFocals, K: 3}},
		{"k=0", server.KNNSelectBatchRequest{Dataset: "outer-single", Focals: batchFocals, K: 0}},
	} {
		status, body := reg.post(t, "knn-select-batch", &tc.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", tc.name, status, body)
		}
	}

	// Empty focal list is a valid empty batch, not an error.
	resp := reg.query(t, "knn-select-batch", &server.KNNSelectBatchRequest{Dataset: "outer-single", K: 3})
	if resp.Count != 0 || len(resp.Batches) != 0 {
		t.Fatalf("empty batch: %+v", resp)
	}
}
