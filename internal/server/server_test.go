package server_test

// The end-to-end differential battery: every query route × {single,
// hash-sharded, spatial-sharded} backing served through a real HTTP stack
// (httptest.Server), with the decoded response asserted byte-identical
// (after canonical sort) to the direct in-process call on the same source.
// The wire layer must not perturb the exact-answer contract.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	twoknn "repro"
	"repro/internal/dataload"
	"repro/internal/server"
)

// testPoints generates the three deterministic point sets every test
// shares: a clustered outer, a uniform inner and a traffic-shaped third.
func testPoints(t testing.TB) (outer, inner, third []twoknn.Point) {
	t.Helper()
	load := func(spec string) []twoknn.Point {
		sp, err := dataload.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := sp.Points()
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	outer = load("clustered:clusters=3,per=150,seed=11")
	inner = load("uniform:n=400,seed=12")
	third = load("uniform:n=350,seed=13")
	return outer, inner, third
}

// backing is one way to host the three datasets: single relations or a
// sharded partition.
type backing struct {
	label  string
	shards int
	policy twoknn.ShardPolicy
}

var backings = []backing{
	{label: "single"},
	{label: "hash3", shards: 3, policy: twoknn.HashSharding},
	{label: "spatial2", shards: 2, policy: twoknn.SpatialSharding},
}

// build materializes a named point set under the backing.
func (b backing) build(t testing.TB, name string, pts []twoknn.Point, opts ...twoknn.RelationOption) twoknn.Source {
	t.Helper()
	if b.shards > 0 {
		opts = append(opts, twoknn.WithShardPolicy(b.policy))
		sr, err := twoknn.NewShardedRelation(name, pts, b.shards, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	r, err := twoknn.NewRelation(name, pts, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// registry is a served server plus the sources it holds, so oracle calls
// run against the exact same backing objects.
type registry struct {
	srv     *server.Server
	ts      *httptest.Server
	sources map[string]twoknn.Source
	ids     map[string]map[twoknn.Point]int32
}

// newRegistry starts an httptest server holding outer/inner/third under
// every backing ("outer-single", "outer-hash3", ...).
func newRegistry(t testing.TB, cfg server.Config) *registry {
	t.Helper()
	outer, inner, third := testPoints(t)
	reg := &registry{
		srv:     server.New(cfg),
		sources: make(map[string]twoknn.Source),
		ids:     make(map[string]map[twoknn.Point]int32),
	}
	for _, b := range backings {
		for role, pts := range map[string][]twoknn.Point{"outer": outer, "inner": inner, "third": third} {
			name := role + "-" + b.label
			src := b.build(t, name, pts)
			if err := reg.srv.Register(name, src); err != nil {
				t.Fatal(err)
			}
			reg.sources[name] = src
			reg.ids[name] = idMap(t, src)
		}
	}
	reg.ts = httptest.NewServer(reg.srv.Handler())
	t.Cleanup(reg.ts.Close)
	return reg
}

// idMap reproduces the server's coordinate→stable-ID mapping rule from the
// public point/ID accessors: co-located points resolve to the smallest ID.
func idMap(t testing.TB, src twoknn.Source) map[twoknn.Point]int32 {
	t.Helper()
	var pts []twoknn.Point
	var ids []int32
	switch r := src.(type) {
	case *twoknn.Relation:
		pts, ids = r.Points(), r.PointIDs()
	case *twoknn.ShardedRelation:
		pts, ids = r.Points(), r.PointIDs()
	default:
		t.Fatalf("unexpected source type %T", src)
	}
	if len(pts) != len(ids) {
		t.Fatalf("Points/PointIDs not parallel: %d vs %d", len(pts), len(ids))
	}
	m := make(map[twoknn.Point]int32, len(pts))
	for i, p := range pts {
		if old, ok := m[p]; !ok || ids[i] < old {
			m[p] = ids[i]
		}
	}
	return m
}

func (reg *registry) row(dataset string, p twoknn.Point) server.PointRow {
	id, ok := reg.ids[dataset][p]
	if !ok {
		id = -1
	}
	return server.PointRow{ID: id, X: p.X, Y: p.Y}
}

// post sends a request struct to a query route and returns status and body.
func (reg *registry) post(t testing.TB, route string, req server.Request) (int, []byte) {
	t.Helper()
	body, err := server.EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(reg.ts.URL+"/v1/query/"+route, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// query posts and decodes a successful response.
func (reg *registry) query(t testing.TB, route string, req server.Request) server.QueryResponse {
	t.Helper()
	status, body := reg.post(t, route, req)
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d, body %s", route, status, body)
	}
	var out server.QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding response: %v (%s)", err, body)
	}
	return out
}

// canonical renders rows sorted into one byte string: the "byte-identical
// after canonical sort" form both sides of the differential are compared in.
func canonical[T any](t testing.TB, rows []T) string {
	t.Helper()
	enc := make([]string, len(rows))
	for i, r := range rows {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = string(b)
	}
	sort.Strings(enc)
	return strings.Join(enc, "\n")
}

// diffRows asserts the served rows are byte-identical to the oracle rows
// after canonical sort.
func diffRows[T any](t *testing.T, got, want []T, count int) {
	t.Helper()
	if count != len(got) {
		t.Errorf("response count %d does not match %d rows", count, len(got))
	}
	g, w := canonical(t, got), canonical(t, want)
	if g != w {
		t.Errorf("served result diverges from in-process oracle:\nserved (%d rows):\n%s\noracle (%d rows):\n%s",
			len(got), g, len(want), w)
	}
}

var focal = server.PointArg{X: 5000, Y: 5000}
var focal2 = server.PointArg{X: 5100, Y: 4900}

func TestDifferentialBattery(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	for _, b := range backings {
		outerN, innerN, thirdN := "outer-"+b.label, "inner-"+b.label, "third-"+b.label
		outer, inner, third := reg.sources[outerN], reg.sources[innerN], reg.sources[thirdN]

		t.Run("knn-select/"+b.label, func(t *testing.T) {
			resp := reg.query(t, "knn-select", &server.KNNSelectRequest{Dataset: outerN, F: focal, K: 5})
			pts, err := twoknn.KNNSelect(outer, focal.Point(), 5)
			if err != nil {
				t.Fatal(err)
			}
			diffRows(t, resp.Points, pointOracle(reg, outerN, pts), resp.Count)
		})

		t.Run("knn-join/"+b.label, func(t *testing.T) {
			resp := reg.query(t, "knn-join", &server.KNNJoinRequest{Outer: outerN, Inner: innerN, K: 3})
			pairs, err := twoknn.KNNJoin(outer, inner, 3)
			if err != nil {
				t.Fatal(err)
			}
			diffRows(t, resp.Pairs, pairOracle(reg, outerN, innerN, pairs), resp.Count)
		})

		t.Run("select-inner-join/"+b.label, func(t *testing.T) {
			resp := reg.query(t, "select-inner-join", &server.SelectInnerJoinRequest{
				Outer: outerN, Inner: innerN, F: focal, KJoin: 3, KSel: 8})
			pairs, err := twoknn.SelectInnerJoin(outer, inner, focal.Point(), 3, 8)
			if err != nil {
				t.Fatal(err)
			}
			diffRows(t, resp.Pairs, pairOracle(reg, outerN, innerN, pairs), resp.Count)
		})

		t.Run("select-outer-join/"+b.label, func(t *testing.T) {
			resp := reg.query(t, "select-outer-join", &server.SelectOuterJoinRequest{
				Outer: outerN, Inner: innerN, F: focal, KSel: 6, KJoin: 3})
			pairs, err := twoknn.SelectOuterJoin(outer, inner, focal.Point(), 6, 3)
			if err != nil {
				t.Fatal(err)
			}
			diffRows(t, resp.Pairs, pairOracle(reg, outerN, innerN, pairs), resp.Count)
		})

		t.Run("two-selects/"+b.label, func(t *testing.T) {
			resp := reg.query(t, "two-selects", &server.TwoSelectsRequest{
				Dataset: outerN, F1: focal, K1: 7, F2: focal2, K2: 9})
			pts, err := twoknn.TwoSelects(outer, focal.Point(), 7, focal2.Point(), 9)
			if err != nil {
				t.Fatal(err)
			}
			diffRows(t, resp.Points, pointOracle(reg, outerN, pts), resp.Count)
		})

		t.Run("unchained-joins/"+b.label, func(t *testing.T) {
			resp := reg.query(t, "unchained-joins", &server.UnchainedJoinsRequest{
				A: outerN, B: innerN, C: thirdN, KAB: 2, KCB: 2})
			ts, err := twoknn.UnchainedJoins(outer, inner, third, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			diffRows(t, resp.Triples, tripleOracle(reg, outerN, innerN, thirdN, ts), resp.Count)
		})

		t.Run("chained-joins/"+b.label, func(t *testing.T) {
			resp := reg.query(t, "chained-joins", &server.ChainedJoinsRequest{
				A: outerN, B: innerN, C: thirdN, KAB: 2, KBC: 2})
			ts, err := twoknn.ChainedJoins(outer, inner, third, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			diffRows(t, resp.Triples, tripleOracle(reg, outerN, innerN, thirdN, ts), resp.Count)
		})

		t.Run("range-inner-join/"+b.label, func(t *testing.T) {
			rng := server.RectArg{MinX: 3000, MinY: 3000, MaxX: 7000, MaxY: 7000}
			resp := reg.query(t, "range-inner-join", &server.RangeInnerJoinRequest{
				Outer: outerN, Inner: innerN, Range: rng, KJoin: 3})
			pairs, err := twoknn.RangeInnerJoin(outer, inner,
				twoknn.NewRect(rng.MinX, rng.MinY, rng.MaxX, rng.MaxY), 3)
			if err != nil {
				t.Fatal(err)
			}
			diffRows(t, resp.Pairs, pairOracle(reg, outerN, innerN, pairs), resp.Count)
		})
	}
}

// TestDifferentialAcrossBackings pins the cross-backing invariant end to
// end: the same query served from single, hash-sharded and spatial-sharded
// datasets returns the same canonical bytes.
func TestDifferentialAcrossBackings(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	var results []string
	for _, b := range backings {
		resp := reg.query(t, "select-inner-join", &server.SelectInnerJoinRequest{
			Outer: "outer-" + b.label, Inner: "inner-" + b.label, F: focal, KJoin: 3, KSel: 8})
		results = append(results, canonical(t, resp.Pairs))
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("backing %s serves different rows than %s", backings[i].label, backings[0].label)
		}
	}
}

// TestDifferentialAlgorithms holds the wire layer to the same answer under
// every forced strategy.
func TestDifferentialAlgorithms(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	var results []string
	for _, alg := range []string{"auto", "conceptual", "counting", "block-marking"} {
		req := &server.SelectInnerJoinRequest{Outer: "outer-single", Inner: "inner-single", F: focal, KJoin: 3, KSel: 8}
		req.Algorithm = alg
		resp := reg.query(t, "select-inner-join", req)
		results = append(results, canonical(t, resp.Pairs))
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("algorithm variant %d serves different rows", i)
		}
	}
}

// TestExplainAndStats covers the observability fields of the envelope.
// EXPLAIN is a plan-selection rendering, so it uses a two-predicate shape.
func TestExplainAndStats(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	req := &server.SelectInnerJoinRequest{Outer: "outer-single", Inner: "inner-single", F: focal, KJoin: 3, KSel: 8}
	req.Explain = true
	resp := reg.query(t, "select-inner-join", req)
	if resp.Explain == "" {
		t.Error("explain requested but response has none")
	}
	if resp.Stats.Neighborhoods == 0 {
		t.Error("stats should record neighborhood computations for a join")
	}
	noExplain := reg.query(t, "knn-join", &server.KNNJoinRequest{Outer: "outer-single", Inner: "inner-single", K: 3})
	if noExplain.Explain != "" {
		t.Error("explain not requested but response has one")
	}
	if noExplain.Stats.Neighborhoods == 0 {
		t.Error("stats should record neighborhood computations for a join")
	}
}

// pointOracle converts an in-process point result into wire rows via the
// same ID mapping the server uses.
func pointOracle(reg *registry, dataset string, pts []twoknn.Point) []server.PointRow {
	rows := make([]server.PointRow, len(pts))
	for i, p := range pts {
		rows[i] = reg.row(dataset, p)
	}
	return rows
}

func pairOracle(reg *registry, outer, inner string, pairs []twoknn.Pair) []server.PairRow {
	rows := make([]server.PairRow, len(pairs))
	for i, pr := range pairs {
		rows[i] = server.PairRow{Left: reg.row(outer, pr.Left), Right: reg.row(inner, pr.Right)}
	}
	return rows
}

func tripleOracle(reg *registry, a, b, c string, ts []twoknn.Triple) []server.TripleRow {
	rows := make([]server.TripleRow, len(ts))
	for i, tr := range ts {
		rows[i] = server.TripleRow{A: reg.row(a, tr.A), B: reg.row(b, tr.B), C: reg.row(c, tr.C)}
	}
	return rows
}

// TestStableIDsResolve asserts every served row resolves a real stable ID:
// the ID round-trips through PointByID to the row's coordinates.
func TestStableIDsResolve(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	resp := reg.query(t, "knn-select", &server.KNNSelectRequest{Dataset: "outer-single", F: focal, K: 10})
	rel := reg.sources["outer-single"].(*twoknn.Relation)
	for _, row := range resp.Points {
		if row.ID < 0 {
			t.Fatalf("row %+v has unresolved ID", row)
		}
		p, ok := rel.PointByID(row.ID)
		if !ok {
			t.Fatalf("ID %d does not resolve", row.ID)
		}
		if p.X != row.X || p.Y != row.Y {
			t.Fatalf("ID %d resolves to %v, row says (%g, %g)", row.ID, p, row.X, row.Y)
		}
	}
}

// TestMetricsAndHealth covers the observability surface.
func TestMetricsAndHealth(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	reg.query(t, "knn-select", &server.KNNSelectRequest{Dataset: "outer-single", F: focal, K: 5})
	reg.query(t, "knn-select", &server.KNNSelectRequest{Dataset: "outer-hash3", F: focal, K: 5})

	resp, err := http.Get(reg.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health server.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Datasets != 9 {
		t.Errorf("healthz = %+v, want ok with 9 datasets", health)
	}

	resp, err = http.Get(reg.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m server.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if len(m.Datasets) != 9 {
		t.Fatalf("metrics reports %d datasets, want 9", len(m.Datasets))
	}
	single := m.Datasets["outer-single"]
	if single.Points != 450 || single.Shards != 0 || single.OutstandingSearchers != 0 {
		t.Errorf("outer-single metrics = %+v", single)
	}
	if single.Stats.Neighborhoods == 0 {
		t.Errorf("outer-single lifetime stats empty after a query: %+v", single.Stats)
	}
	sharded := m.Datasets["outer-hash3"]
	if sharded.Shards != 3 || sharded.Policy != "hash" || len(sharded.ShardStats) != 3 {
		t.Errorf("outer-hash3 metrics = %+v", sharded)
	}
	shardPts := 0
	for _, sh := range sharded.ShardStats {
		shardPts += sh.Points
	}
	if shardPts != 450 {
		t.Errorf("shard points sum to %d, want 450", shardPts)
	}
	rm := m.Routes["knn-select"]
	if rm.Requests != 2 || rm.OK != 2 {
		t.Errorf("knn-select route metrics = %+v, want 2 requests, 2 ok", rm)
	}
}

// TestMethodAndRouteErrors pins the HTTP-level rejections.
func TestMethodAndRouteErrors(t *testing.T) {
	reg := newRegistry(t, server.Config{})
	resp, err := http.Get(reg.ts.URL + "/v1/query/knn-select")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on a query route: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(reg.ts.URL+"/v1/query/teleport", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route: status %d, want 404", resp.StatusCode)
	}
}
