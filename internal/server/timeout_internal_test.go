package server

// Unit coverage for the per-dataset serving envelope added alongside remote
// datasets: the budget resolution rule, the Retry-After override, and the
// spec-grammar segments that configure both (plus the remote shard-list
// grammar itself).

import (
	"strings"
	"testing"
	"time"

	twoknn "repro"
	"repro/internal/dataload"
)

func ds(def, max, retry time.Duration) *dataset {
	return &dataset{defaultTimeout: def, maxTimeout: max, retryAfter: retry}
}

func TestBudgetFor(t *testing.T) {
	s := New(Config{DefaultTimeout: 10 * time.Second})
	cases := []struct {
		name  string
		ds    []*dataset
		reqMS int64
		want  time.Duration
	}{
		{"server default", []*dataset{ds(0, 0, 0)}, 0, 10 * time.Second},
		{"request shortens", []*dataset{ds(0, 0, 0)}, 250, 250 * time.Millisecond},
		{"request cannot extend", []*dataset{ds(0, 0, 0)}, 60_000, 10 * time.Second},
		{"dataset default applies without request timeout", []*dataset{ds(2*time.Second, 0, 0)}, 0, 2 * time.Second},
		{"request overrides dataset default", []*dataset{ds(2*time.Second, 0, 0)}, 5000, 5 * time.Second},
		{"max caps the request", []*dataset{ds(0, time.Second, 0)}, 5000, time.Second},
		{"max caps the server default", []*dataset{ds(0, time.Second, 0)}, 0, time.Second},
		{"smallest involved default wins", []*dataset{ds(3*time.Second, 0, 0), ds(2*time.Second, 0, 0)}, 0, 2 * time.Second},
		{"smallest involved max wins", []*dataset{ds(0, 4*time.Second, 0), ds(0, time.Second, 0)}, 9000, time.Second},
		{"nil datasets are skipped", []*dataset{nil, ds(0, 0, 0)}, 0, 10 * time.Second},
	}
	for _, tc := range cases {
		if got := s.budgetFor(tc.ds, tc.reqMS); got != tc.want {
			t.Errorf("%s: budget %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRetryAfterFor(t *testing.T) {
	s := New(Config{RetryAfter: 3 * time.Second})
	if got := s.retryAfterFor(ds(0, 0, 0)); got != 3*time.Second {
		t.Errorf("no override: %v", got)
	}
	if got := s.retryAfterFor(ds(0, 0, 7*time.Second)); got != 7*time.Second {
		t.Errorf("override: %v", got)
	}
	if got := s.retryAfterFor(ds(0, 0, 7*time.Second), nil, ds(0, 0, 2*time.Second)); got != 2*time.Second {
		t.Errorf("smallest override wins: %v", got)
	}
	if got := retryAfterSeconds(1500 * time.Millisecond); got != "2" {
		t.Errorf("retryAfterSeconds rounds up: %q", got)
	}
}

func TestSplitDatasetArgTimeoutGrammar(t *testing.T) {
	name, spec, opts, err := SplitDatasetArgOptions(
		"trips=uniform:n=100,timeout_ms=500,seed=1,max_timeout_ms=2000,retry_after_ms=7000")
	if err != nil {
		t.Fatal(err)
	}
	if name != "trips" || spec.N != 100 || spec.Seed != 1 {
		t.Fatalf("name=%q spec=%+v", name, spec)
	}
	if opts.DefaultTimeoutMS != 500 || opts.MaxTimeoutMS != 2000 || opts.RetryAfterMS != 7000 {
		t.Fatalf("opts=%+v", opts)
	}

	for _, bad := range []string{
		"trips=uniform:n=100,timeout_ms=0",
		"trips=uniform:n=100,timeout_ms=-5",
		"trips=uniform:n=100,max_timeout_ms=soon",
		"trips=uniform:n=100,retry_after_ms=",
		"trips=uniform:n=100,timeout_ms=2000,max_timeout_ms=500", // default above the cap
	} {
		if _, _, _, err := SplitDatasetArgOptions(bad); err == nil {
			t.Errorf("%q: expected an error", bad)
		}
	}
}

func TestSplitDatasetArgRemote(t *testing.T) {
	name, shards, opts, ok, err := SplitDatasetArgRemote(
		"mesh=remote:shards=http://a:1|http://b:1;http://c:1,timeout_ms=500,max_inflight=4")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if name != "mesh" {
		t.Errorf("name = %q", name)
	}
	if len(shards) != 2 || len(shards[0]) != 2 || shards[0][0] != "http://a:1" ||
		shards[0][1] != "http://b:1" || shards[1][0] != "http://c:1" {
		t.Errorf("shards = %v", shards)
	}
	if opts.DefaultTimeoutMS != 500 || opts.MaxInflight != 4 {
		t.Errorf("opts = %+v", opts)
	}

	// Non-remote specs fall through without error.
	if _, _, _, ok, err := SplitDatasetArgRemote("trips=uniform:n=100,seed=1"); ok || err != nil {
		t.Errorf("non-remote spec: ok=%v err=%v", ok, err)
	}

	for _, bad := range []string{
		"mesh=remote:replicas=http://a:1",    // not shards=
		"mesh=remote:shards=http://a:1;;",    // empty shard
		"mesh=remote:shards=x,timeout_ms=no", // bad option segment
	} {
		if _, _, _, ok, err := SplitDatasetArgRemote(bad); !ok || err == nil {
			t.Errorf("%q: ok=%v err=%v, want a remote-spec error", bad, ok, err)
		}
	}
}

func TestRegisterRejectsBadTimeoutOptions(t *testing.T) {
	sp, err := dataload.Parse("uniform:n=50,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sp.Points()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := twoknn.NewRelation("pts", pts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.RegisterWithOptions("neg", rel, DatasetOptions{DefaultTimeoutMS: -1}); err == nil {
		t.Error("negative timeout accepted")
	}
	if err := s.RegisterWithOptions("inverted", rel, DatasetOptions{DefaultTimeoutMS: 500, MaxTimeoutMS: 100}); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Errorf("default above cap: err = %v", err)
	}
	if err := s.RegisterWithOptions("good", rel, DatasetOptions{DefaultTimeoutMS: 100, MaxTimeoutMS: 500, RetryAfterMS: 2000}); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	d := s.lookup("good")
	if d.defaultTimeout != 100*time.Millisecond || d.maxTimeout != 500*time.Millisecond || d.retryAfter != 2*time.Second {
		t.Errorf("resolved durations: %+v", d)
	}
}
