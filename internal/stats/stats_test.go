package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestNilCountersAreSafe(t *testing.T) {
	var c *Counters
	// Every method must be a no-op on nil, so hot paths can skip the
	// nil-check at call sites.
	c.AddNeighborhood(5)
	c.AddBlocksScanned(3)
	c.AddBlocksPruned(2)
	c.AddOuterSkipped(1)
	c.AddCacheHit()
	c.AddCacheMiss()
	c.Add(&Counters{Neighborhoods: 7})
	c.Reset()
	if s := c.String(); !strings.Contains(s, "nil") {
		t.Errorf("nil String = %q", s)
	}
}

func TestCountersAccumulateAndReset(t *testing.T) {
	var c Counters
	c.AddNeighborhood(10)
	c.AddNeighborhood(20)
	c.AddBlocksScanned(4)
	c.AddBlocksPruned(3)
	c.AddOuterSkipped(2)
	c.AddCacheHit()
	c.AddCacheMiss()

	if c.Neighborhoods != 2 || c.PointsCompared != 30 {
		t.Errorf("neighborhood counters wrong: %+v", c)
	}
	if c.BlocksScanned != 4 || c.BlocksPruned != 3 || c.OuterSkipped != 2 {
		t.Errorf("block counters wrong: %+v", c)
	}
	if c.CacheHits != 1 || c.CacheMisses != 1 {
		t.Errorf("cache counters wrong: %+v", c)
	}

	var sum Counters
	sum.Add(&c)
	sum.Add(&c)
	if sum.Neighborhoods != 4 || sum.PointsCompared != 60 || sum.CacheHits != 2 {
		t.Errorf("Add accumulation wrong: %+v", sum)
	}
	sum.Add(nil)
	if sum.Neighborhoods != 4 {
		t.Errorf("Add(nil) must be a no-op")
	}

	c.Reset()
	if c != (Counters{}) {
		t.Errorf("Reset left %+v", c)
	}
}

// TestCountersConcurrentMutation shares one Counters value between many
// goroutines mixing every mutation path — the situation a server hits when
// it accumulates all queries into one WithStats total. Run under -race this
// proves the counters are race-free; the totals prove no increment is lost.
func TestCountersConcurrentMutation(t *testing.T) {
	const goroutines = 16
	const iters = 500

	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var shard Counters
			for i := 0; i < iters; i++ {
				c.AddNeighborhood(3)
				c.AddBlocksScanned(2)
				c.AddBlocksPruned(1)
				c.AddOuterSkipped(1)
				c.AddCacheHit()
				c.AddCacheMiss()
				shard.AddNeighborhood(1)
				_ = c.Snapshot()
				_ = c.String()
			}
			c.Add(&shard) // merge a per-worker shard while others still record
		}()
	}
	wg.Wait()

	// Each iteration records one neighborhood directly and one through its
	// shard (3 and 1 points compared respectively).
	const n = goroutines * iters
	if want := int64(2 * n); c.Neighborhoods != want {
		t.Errorf("Neighborhoods = %d, want %d", c.Neighborhoods, want)
	}
	if want := int64(3*n + n); c.PointsCompared != want {
		t.Errorf("PointsCompared = %d, want %d", c.PointsCompared, want)
	}
	if c.BlocksScanned != int64(2*n) || c.BlocksPruned != int64(n) || c.OuterSkipped != int64(n) {
		t.Errorf("block counters lost increments: %+v", c)
	}
	if c.CacheHits != int64(n) || c.CacheMisses != int64(n) {
		t.Errorf("cache counters lost increments: %+v", c)
	}
}

func TestCountersString(t *testing.T) {
	c := Counters{Neighborhoods: 3, BlocksScanned: 5, CacheHits: 2, CacheMisses: 1}
	s := c.String()
	for _, want := range []string{"nbr=3", "blocksScanned=5", "cache=2/3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}
