// Package stats provides lightweight operation counters threaded through the
// query algorithms. Wall-clock time depends on the machine; these counters
// expose the quantities the paper's analysis reasons about directly — how
// many neighborhoods were computed, how many blocks were scanned or pruned —
// so experiments can report machine-independent evidence next to timings.
package stats

import "fmt"

// Counters accumulates per-query operation counts. A nil *Counters is valid
// everywhere and records nothing, so instrumentation is free on hot paths
// that do not request it.
type Counters struct {
	// Neighborhoods is the number of k-nearest-neighbor computations
	// performed (the dominant cost in every algorithm of the paper).
	Neighborhoods int64

	// BlocksScanned is the number of blocks popped from MINDIST/MAXDIST
	// scans across all phases.
	BlocksScanned int64

	// PointsCompared is the number of candidate points examined during
	// neighborhood computations.
	PointsCompared int64

	// BlocksPruned is the number of blocks excluded from further work by a
	// pruning rule (Non-Contributing marks, contour stops, count cut-offs).
	BlocksPruned int64

	// OuterSkipped is the number of outer-relation points skipped without a
	// neighborhood computation (the Counting algorithm's per-tuple prune).
	OuterSkipped int64

	// CacheHits / CacheMisses count probes of the chained-join neighborhood
	// cache (Section 4.2 of the paper).
	CacheHits   int64
	CacheMisses int64
}

// AddNeighborhood records one kNN computation that examined n candidate
// points.
func (c *Counters) AddNeighborhood(n int) {
	if c == nil {
		return
	}
	c.Neighborhoods++
	c.PointsCompared += int64(n)
}

// AddBlocksScanned records n popped blocks.
func (c *Counters) AddBlocksScanned(n int) {
	if c == nil {
		return
	}
	c.BlocksScanned += int64(n)
}

// AddBlocksPruned records n pruned blocks.
func (c *Counters) AddBlocksPruned(n int) {
	if c == nil {
		return
	}
	c.BlocksPruned += int64(n)
}

// AddOuterSkipped records n skipped outer points.
func (c *Counters) AddOuterSkipped(n int) {
	if c == nil {
		return
	}
	c.OuterSkipped += int64(n)
}

// AddCacheHit records one cache hit.
func (c *Counters) AddCacheHit() {
	if c == nil {
		return
	}
	c.CacheHits++
}

// AddCacheMiss records one cache miss.
func (c *Counters) AddCacheMiss() {
	if c == nil {
		return
	}
	c.CacheMisses++
}

// Add accumulates other into c. Both receivers may be nil.
func (c *Counters) Add(other *Counters) {
	if c == nil || other == nil {
		return
	}
	c.Neighborhoods += other.Neighborhoods
	c.BlocksScanned += other.BlocksScanned
	c.PointsCompared += other.PointsCompared
	c.BlocksPruned += other.BlocksPruned
	c.OuterSkipped += other.OuterSkipped
	c.CacheHits += other.CacheHits
	c.CacheMisses += other.CacheMisses
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	*c = Counters{}
}

// String implements fmt.Stringer with a compact one-line summary.
func (c *Counters) String() string {
	if c == nil {
		return "stats: <nil>"
	}
	return fmt.Sprintf("nbr=%d blocksScanned=%d ptsCompared=%d blocksPruned=%d outerSkipped=%d cache=%d/%d",
		c.Neighborhoods, c.BlocksScanned, c.PointsCompared, c.BlocksPruned,
		c.OuterSkipped, c.CacheHits, c.CacheHits+c.CacheMisses)
}
