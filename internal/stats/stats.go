// Package stats provides lightweight operation counters threaded through the
// query algorithms. Wall-clock time depends on the machine; these counters
// expose the quantities the paper's analysis reasons about directly — how
// many neighborhoods were computed, how many blocks were scanned or pruned —
// so experiments can report machine-independent evidence next to timings.
package stats

import (
	"fmt"
	"sync/atomic"
)

// Counters accumulates per-query operation counts. A nil *Counters is valid
// everywhere and records nothing, so instrumentation is free on hot paths
// that do not request it.
//
// All mutation goes through the Add* methods, which are atomic: one Counters
// value may be shared by any number of goroutines — parallel workers of one
// query, or many concurrent queries accumulating into a server-wide total —
// without locking. Reading the fields directly is safe once the recording
// queries have finished (or via Snapshot for a consistent mid-flight copy).
//
// The fields stay plain exported int64s (rather than atomic.Int64) so that
// direct reads and JSON marshaling keep working; the cost is the usual
// sync/atomic alignment rule on 32-bit platforms: a Counters must be
// 64-bit aligned there. Heap-allocated values (&Counters{}, new) always
// are; when embedding a Counters by value in another struct on a 32-bit
// target, place it first or after 8-byte-aligned fields.
type Counters struct {
	// Neighborhoods is the number of k-nearest-neighbor computations
	// performed (the dominant cost in every algorithm of the paper).
	Neighborhoods int64

	// BlocksScanned is the number of blocks popped from MINDIST/MAXDIST
	// scans across all phases.
	BlocksScanned int64

	// PointsCompared is the number of candidate points examined during
	// neighborhood computations.
	PointsCompared int64

	// BlocksPruned is the number of blocks excluded from further work by a
	// pruning rule (Non-Contributing marks, contour stops, count cut-offs).
	BlocksPruned int64

	// OuterSkipped is the number of outer-relation points skipped without a
	// neighborhood computation (the Counting algorithm's per-tuple prune).
	OuterSkipped int64

	// CacheHits / CacheMisses count probes of every result-memoization
	// layer: the chained-join neighborhood cache (Section 4.2 of the paper)
	// and the serving layer's epoch-keyed query result cache
	// (internal/qcache). A hit means the probed answer was reused without
	// recomputation; a miss means the probe fell through to evaluation.
	CacheHits   int64
	CacheMisses int64
}

// AddNeighborhood records one kNN computation that examined n candidate
// points.
func (c *Counters) AddNeighborhood(n int) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.Neighborhoods, 1)
	atomic.AddInt64(&c.PointsCompared, int64(n))
}

// AddBlocksScanned records n popped blocks.
func (c *Counters) AddBlocksScanned(n int) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.BlocksScanned, int64(n))
}

// AddBlocksPruned records n pruned blocks.
func (c *Counters) AddBlocksPruned(n int) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.BlocksPruned, int64(n))
}

// AddOuterSkipped records n skipped outer points.
func (c *Counters) AddOuterSkipped(n int) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.OuterSkipped, int64(n))
}

// AddCacheHit records one cache hit.
func (c *Counters) AddCacheHit() {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.CacheHits, 1)
}

// AddCacheMiss records one cache miss.
func (c *Counters) AddCacheMiss() {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.CacheMisses, 1)
}

// Add accumulates other into c. Both receivers may be nil. Add is atomic on
// both sides, so per-worker shards can merge into a shared total while other
// workers are still recording.
func (c *Counters) Add(other *Counters) {
	if c == nil || other == nil {
		return
	}
	atomic.AddInt64(&c.Neighborhoods, atomic.LoadInt64(&other.Neighborhoods))
	atomic.AddInt64(&c.BlocksScanned, atomic.LoadInt64(&other.BlocksScanned))
	atomic.AddInt64(&c.PointsCompared, atomic.LoadInt64(&other.PointsCompared))
	atomic.AddInt64(&c.BlocksPruned, atomic.LoadInt64(&other.BlocksPruned))
	atomic.AddInt64(&c.OuterSkipped, atomic.LoadInt64(&other.OuterSkipped))
	atomic.AddInt64(&c.CacheHits, atomic.LoadInt64(&other.CacheHits))
	atomic.AddInt64(&c.CacheMisses, atomic.LoadInt64(&other.CacheMisses))
}

// Snapshot returns a plain copy of the counters read atomically field by
// field, for reporting while recording goroutines may still be running.
func (c *Counters) Snapshot() Counters {
	if c == nil {
		return Counters{}
	}
	return Counters{
		Neighborhoods:  atomic.LoadInt64(&c.Neighborhoods),
		BlocksScanned:  atomic.LoadInt64(&c.BlocksScanned),
		PointsCompared: atomic.LoadInt64(&c.PointsCompared),
		BlocksPruned:   atomic.LoadInt64(&c.BlocksPruned),
		OuterSkipped:   atomic.LoadInt64(&c.OuterSkipped),
		CacheHits:      atomic.LoadInt64(&c.CacheHits),
		CacheMisses:    atomic.LoadInt64(&c.CacheMisses),
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	atomic.StoreInt64(&c.Neighborhoods, 0)
	atomic.StoreInt64(&c.BlocksScanned, 0)
	atomic.StoreInt64(&c.PointsCompared, 0)
	atomic.StoreInt64(&c.BlocksPruned, 0)
	atomic.StoreInt64(&c.OuterSkipped, 0)
	atomic.StoreInt64(&c.CacheHits, 0)
	atomic.StoreInt64(&c.CacheMisses, 0)
}

// String implements fmt.Stringer with a compact one-line summary.
func (c *Counters) String() string {
	if c == nil {
		return "stats: <nil>"
	}
	s := c.Snapshot()
	return fmt.Sprintf("nbr=%d blocksScanned=%d ptsCompared=%d blocksPruned=%d outerSkipped=%d cache=%d/%d",
		s.Neighborhoods, s.BlocksScanned, s.PointsCompared, s.BlocksPruned,
		s.OuterSkipped, s.CacheHits, s.CacheHits+s.CacheMisses)
}
