package twoknn_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	twoknn "repro"
	"repro/internal/kernel"
)

// Differential battery for the batched entry points: KNNSelectBatch and
// TwoSelectsBatch must be byte-identical to the sequential per-query loop
// across every index kind, both shard layouts and every available distance
// kernel — the full matrix the acceptance criteria name.

// batchTestFocals mixes clustered, uniform, duplicate and out-of-bounds
// focal points — the regimes that stress the driver's Z-order grouping.
func batchTestFocals(n int, seed int64) []twoknn.Point {
	rng := rand.New(rand.NewSource(seed))
	focals := make([]twoknn.Point, n)
	for i := range focals {
		switch i % 4 {
		case 0:
			focals[i] = twoknn.Point{X: 512 + rng.NormFloat64()*25, Y: 512 + rng.NormFloat64()*25}
		case 1:
			focals[i] = twoknn.Point{X: rng.Float64() * 1024, Y: rng.Float64() * 1024}
		case 2:
			focals[i] = focals[rng.Intn(i)]
		default:
			focals[i] = twoknn.Point{X: -100 + rng.Float64()*1300, Y: -100 + rng.Float64()*1300}
		}
	}
	return focals
}

// TestKNNSelectBatchDifferentialMatrix: batch vs sequential loop over
// 4 index kinds × hash/spatial sharding × every kernel.
func TestKNNSelectBatchDifferentialMatrix(t *testing.T) {
	pts := clusteredTestPoints(1400, 5)
	srcs := kernelEquivSources(t, "batch-matrix", pts)
	focals := batchTestFocals(70, 11)
	for backing, src := range srcs {
		t.Run(backing, func(t *testing.T) {
			for _, kname := range kernel.Available() {
				restore, err := kernel.Use(kname)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range []int{1, 13} {
					got, err := twoknn.KNNSelectBatch(src, focals, k)
					if err != nil {
						t.Fatalf("kernel %s k=%d: %v", kname, k, err)
					}
					for i, f := range focals {
						want, err := twoknn.KNNSelect(src, f, k)
						if err != nil {
							t.Fatalf("sequential: %v", err)
						}
						if !reflect.DeepEqual(got[i], want) {
							t.Fatalf("kernel %s k=%d focal %d %v:\n batch %v\n  seq  %v",
								kname, k, i, f, got[i], want)
						}
					}
				}
				restore()
			}
		})
	}
}

// TestTwoSelectsBatchDifferentialMatrix: both algorithms, batch vs the
// sequential TwoSelects loop, over the same source matrix.
func TestTwoSelectsBatchDifferentialMatrix(t *testing.T) {
	pts := clusteredTestPoints(1100, 6)
	srcs := kernelEquivSources(t, "two-batch-matrix", pts)
	f1s := batchTestFocals(40, 21)
	f2s := batchTestFocals(40, 22)
	for backing, src := range srcs {
		t.Run(backing, func(t *testing.T) {
			for _, alg := range []twoknn.Algorithm{twoknn.AlgorithmCounting, twoknn.AlgorithmConceptual} {
				// k1 > k2 exercises the swap; Counting selects the default
				// optimized two-select plan here.
				got, err := twoknn.TwoSelectsBatch(src, f1s, 17, f2s, 5, twoknn.WithAlgorithm(alg))
				if err != nil {
					t.Fatal(err)
				}
				for i := range f1s {
					want, err := twoknn.TwoSelects(src, f1s[i], 17, f2s[i], 5, twoknn.WithAlgorithm(alg))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got[i], want) {
						t.Fatalf("alg %v pair %d:\n batch %v\n  seq  %v", alg, i, got[i], want)
					}
				}
			}
		})
	}
}

// TestBatchArgValidation covers the error and edge contract.
func TestBatchArgValidation(t *testing.T) {
	rel, err := twoknn.NewRelation("args", clusteredTestPoints(100, 7))
	if err != nil {
		t.Fatal(err)
	}
	focals := batchTestFocals(3, 31)

	if _, err := twoknn.KNNSelectBatch(nil, focals, 5); !errors.Is(err, twoknn.ErrNilRelation) {
		t.Fatalf("nil source: %v", err)
	}
	if _, err := twoknn.KNNSelectBatch(rel, focals, 0); !errors.Is(err, twoknn.ErrNonPositiveK) {
		t.Fatalf("k=0: %v", err)
	}
	if _, err := twoknn.TwoSelectsBatch(rel, focals, 3, focals[:2], 3); err == nil {
		t.Fatal("length mismatch accepted")
	}
	out, err := twoknn.KNNSelectBatch(rel, nil, 5)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty focals: %v %v", out, err)
	}

	var st twoknn.Stats
	var explain string
	if _, err := twoknn.KNNSelectBatch(rel, focals, 5, twoknn.WithStats(&st), twoknn.WithExplain(&explain)); err != nil {
		t.Fatal(err)
	}
	if st.Neighborhoods == 0 || st.PointsCompared == 0 {
		t.Fatalf("stats did not move: %+v", st)
	}
	if explain == "" {
		t.Fatal("explain empty")
	}
}

// TestRelationEpoch covers the Epoch/Invalidate hook on both source kinds.
func TestRelationEpoch(t *testing.T) {
	pts := clusteredTestPoints(64, 8)
	rel, err := twoknn.NewRelation("epoch", pts)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Epoch() == 0 {
		t.Fatal("epoch must start nonzero")
	}
	before := rel.Epoch()
	rel.Invalidate()
	if rel.Epoch() != before+1 {
		t.Fatalf("Invalidate: epoch %d -> %d", before, rel.Epoch())
	}
	if clone := rel.Clone(); clone.Epoch() != rel.Epoch() {
		t.Fatal("clone must share the epoch")
	}
	sh, err := twoknn.NewShardedRelation("epoch-sh", pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	before = sh.Epoch()
	sh.Invalidate()
	if sh.Epoch() != before+1 {
		t.Fatalf("sharded Invalidate: epoch %d -> %d", before, sh.Epoch())
	}
}

func ExampleKNNSelectBatch() {
	pts := []twoknn.Point{
		{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 9, Y: 9}, {X: 1, Y: 2}, {X: 8, Y: 8},
	}
	rel, _ := twoknn.NewRelation("stations", pts)
	results, _ := rel.KNNSelectBatch([]twoknn.Point{{X: 0, Y: 0}, {X: 10, Y: 10}}, 2)
	for i, res := range results {
		fmt.Printf("focal %d: %v\n", i, res)
	}
	// Output:
	// focal 0: [(1, 1) (1, 2)]
	// focal 1: [(9, 9) (8, 8)]
}
