package twoknn

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/locality"
	"repro/internal/shard"
)

// KNNSelectBatch evaluates σ_{k,f}(rel) for every focal point in one batch,
// returning one result slice per focal in input order — byte-identical to
// calling KNNSelect once per focal, including the ascending (distance, X, Y)
// result order. The batch driver sorts the focals in Z-order, cuts them into
// spatially tight groups and walks the index once per block for each group,
// so dense batches amortize traversal and feed the batched distance kernels
// long spans; sparse batches degrade gracefully to sequential cost. Sharded
// sources run the batch per shard and gather through the exact probe merge.
//
// The returned slices share one backing array. It errors on a nil source
// (ErrNilRelation) and non-positive k (ErrNonPositiveK); an empty focal
// slice returns an empty, nil-error result.
func KNNSelectBatch(rel Source, focals []Point, k int, opts ...QueryOption) ([][]Point, error) {
	if err := checkSources(rel); err != nil {
		return nil, err
	}
	if err := checkK("k", k); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	r := rel.singleRelation()
	return runQuery(&cfg, func() ([][]Point, error) {
		if cfg.explain != nil {
			*cfg.explain = shardedExplain("knn-select-batch",
				fmt.Sprintf("%d focals, Z-order grouped shared block walk", len(focals)), rel)
		}
		if r == nil {
			return shard.SelectBatch(cfg.ctx, rel.execGroup(), focals, k, cfg.stats), nil
		}
		h := acquireHandle(cfg.ctx, r.snapshot().rel)
		defer h.Release()
		d := batch.Acquire()
		defer batch.Release(d)
		out, _, _ := flattenNbrs(d.KNNSelect(h, focals, k, cfg.stats))
		return out, nil
	})
}

// TwoSelectsBatch evaluates σ_{k1,f1s[i]} ∩ σ_{k2,f2s[i]} for every focal
// pair in one batch, returning one result slice per pair in input order —
// byte-identical to calling TwoSelects once per pair. Both phases run
// through the batch driver: the smaller-k predicate as a batched kNN
// select, the larger one as a batched threshold-clipped select (or both in
// full under WithAlgorithm(AlgorithmConceptual)). The focal slices must
// have equal length.
func TwoSelectsBatch(rel Source, f1s []Point, k1 int, f2s []Point, k2 int, opts ...QueryOption) ([][]Point, error) {
	if err := checkSources(rel); err != nil {
		return nil, err
	}
	if err := checkK("k1", k1); err != nil {
		return nil, err
	}
	if err := checkK("k2", k2); err != nil {
		return nil, err
	}
	if len(f1s) != len(f2s) {
		return nil, fmt.Errorf("twoknn: TwoSelectsBatch focal slices differ in length (%d vs %d)", len(f1s), len(f2s))
	}
	cfg := applyOptions(opts)
	r := rel.singleRelation()
	conceptual := cfg.algorithm == AlgorithmConceptual
	return runQuery(&cfg, func() ([][]Point, error) {
		if cfg.explain != nil {
			*cfg.explain = shardedExplain("two-selects-batch",
				fmt.Sprintf("%d focal pairs, smaller-k predicate first, batched clipped locality", len(f1s)), rel)
		}
		if r == nil {
			return shard.TwoSelectsBatch(cfg.ctx, rel.execGroup(), f1s, k1, f2s, k2, conceptual, cfg.stats), nil
		}
		h := acquireHandle(cfg.ctx, r.snapshot().rel)
		defer h.Release()
		d := batch.Acquire()
		defer batch.Release(d)

		if !conceptual && k1 > k2 {
			f1s, f2s = f2s, f1s
			k1, k2 = k2, k1
		}
		// Copy phase 1 out of the driver's kNN arena: the conceptual mode's
		// second kNN batch would overwrite it.
		_, pts1, off1 := flattenNbrs(d.KNNSelect(h, f1s, k1, cfg.stats))

		var res2 []locality.Neighborhood
		if conceptual {
			res2 = d.KNNSelect(h, f2s, k2, cfg.stats)
		} else {
			thresholds := make([]float64, len(f1s))
			for i := range f1s {
				if off1[i] == off1[i+1] {
					thresholds[i] = -1 // empty first answer: skip the query
					continue
				}
				nb := locality.Neighborhood{Points: pts1[off1[i]:off1[i+1]]}
				thresholds[i] = nb.FarthestDistSqTo(f2s[i])
			}
			res2 = d.SelectWithinSq(h, f2s, k2, thresholds, cfg.stats)
		}

		out := make([][]Point, len(f1s))
		for i := range f1s {
			if !conceptual && off1[i] == off1[i+1] {
				continue
			}
			nb1 := locality.Neighborhood{Points: pts1[off1[i]:off1[i+1]]}
			out[i] = nb1.Intersect(&res2[i])
		}
		return out, nil
	})
}

// flattenNbrs copies driver results into one flat backing array, returning
// per-query slice headers, the flat array and its offsets.
func flattenNbrs(res []locality.Neighborhood) ([][]Point, []Point, []int) {
	total := 0
	for i := range res {
		total += len(res[i].Points)
	}
	pts := make([]Point, 0, total)
	off := make([]int, len(res)+1)
	for i := range res {
		pts = append(pts, res[i].Points...)
		off[i+1] = len(pts)
	}
	out := make([][]Point, len(res))
	for i := range out {
		out[i] = pts[off[i]:off[i+1]:off[i+1]]
	}
	return out, pts, off
}

// KNNSelectBatch is the method form of the package-level KNNSelectBatch.
func (r *Relation) KNNSelectBatch(focals []Point, k int, opts ...QueryOption) ([][]Point, error) {
	return KNNSelectBatch(r, focals, k, opts...)
}

// KNNSelectBatch is the method form of the package-level KNNSelectBatch.
func (sr *ShardedRelation) KNNSelectBatch(focals []Point, k int, opts ...QueryOption) ([][]Point, error) {
	return KNNSelectBatch(sr, focals, k, opts...)
}
