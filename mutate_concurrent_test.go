package twoknn_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	twoknn "repro"
	"repro/internal/datagen"
)

// TestMutateQueryRaceBattery runs N writer goroutines (inserts, removals,
// moves, with background compaction enabled) against M reader goroutines
// across several query shapes. Readers assert snapshot coherence — a batch
// repeating the same focal must answer it identically within one query —
// and the battery ends with a leak check and an internal-consistency sweep.
// Run under -race in CI.
func TestMutateQueryRaceBattery(t *testing.T) {
	base := datagen.Uniform(1500, testBounds, 31)
	rel, err := twoknn.NewRelation("race", base,
		twoknn.WithBlockCapacity(32), twoknn.WithCompactThreshold(0.05))
	if err != nil {
		t.Fatal(err)
	}
	other := uniformRelation(t, "static", 300, 32, twoknn.WithBlockCapacity(32))

	const (
		writers      = 3
		readers      = 4
		writerOps    = 120
		maxMutatedID = 4000
	)
	var wg sync.WaitGroup
	writersDone := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < writerOps; i++ {
				switch i % 3 {
				case 0:
					pts := make([]twoknn.Point, 5)
					for j := range pts {
						pts[j] = twoknn.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
					}
					rel.Insert(pts...)
				case 1:
					rel.Remove(int32(rng.Intn(maxMutatedID)), int32(rng.Intn(maxMutatedID)))
				default:
					rel.Update(int32(rng.Intn(maxMutatedID)),
						twoknn.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
				}
			}
		}(int64(w) + 400)
	}
	go func() {
		wg.Wait()
		close(writersDone)
	}()

	var rwg sync.WaitGroup
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(seed int64) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; ; iter++ {
				select {
				case <-writersDone:
					if iter > 0 {
						return
					}
				default:
				}
				f := twoknn.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
				f2 := twoknn.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}

				// Coherence: one batch query runs on one snapshot, so a
				// repeated focal must get a byte-identical answer.
				batches, err := twoknn.KNNSelectBatch(rel, []twoknn.Point{f, f2, f}, 8)
				if err != nil {
					errCh <- err
					return
				}
				if !reflect.DeepEqual(batches[0], batches[2]) {
					t.Errorf("repeated focal diverged within one batch:\n %v\n %v", batches[0], batches[2])
					return
				}

				pts, err := rel.KNNSelect(f, 8)
				if err != nil {
					errCh <- err
					return
				}
				last := -1.0
				for _, p := range pts {
					d := p.Dist(f)
					if d < last {
						t.Errorf("KNNSelect result not distance-ordered: %v", pts)
						return
					}
					last = d
				}

				if _, err := twoknn.KNNJoin(other, rel, 3); err != nil {
					errCh <- err
					return
				}
				if _, err := twoknn.TwoSelects(rel, f, 6, f2, 4); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(r) + 500)
	}
	rwg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("reader query failed: %v", err)
	}

	// Zero leaked handles once the dust settles.
	if n := rel.OutstandingSearchers(); n != 0 {
		t.Fatalf("mutated relation leaked %d searcher handles", n)
	}
	if n := other.OutstandingSearchers(); n != 0 {
		t.Fatalf("static relation leaked %d searcher handles", n)
	}

	// Internal consistency of the final state, compacted and not.
	check := func() {
		ids := rel.PointIDs()
		if len(ids) != rel.Len() {
			t.Fatalf("PointIDs len %d != Len %d", len(ids), rel.Len())
		}
		seen := make(map[int32]bool, len(ids))
		for i, id := range ids {
			if seen[id] {
				t.Fatalf("duplicate stable ID %d in live set", id)
			}
			seen[id] = true
			if p, ok := rel.PointByID(id); !ok || p != rel.PointAt(i) {
				t.Fatalf("PointByID(%d) inconsistent with PointAt(%d)", id, i)
			}
		}
	}
	check()
	if err := rel.Compact(); err != nil {
		t.Fatalf("final compact: %v", err)
	}
	check()
	ds := rel.DeltaStats()
	if ds.DeltaLive != 0 || ds.Tombstones != 0 {
		t.Fatalf("overlay not drained after final compact: %+v", ds)
	}
}
