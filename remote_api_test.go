package twoknn_test

// Differential oracle and chaos battery for the distributed scatter/gather
// layer: every query shape evaluated against a RemoteRelation must be
// byte-identical (after canonical sort) to the single-relation evaluation
// over the same points — across transports (loopback, real HTTP), replica
// layouts, and under injected network faults (dropped probes, connection
// resets, slow endpoints), where the robustness envelope's retries,
// failover and breakers must recover the exact answer or fail closed with
// the typed error taxonomy. The scaffolding (oracleDataset, computeExpected,
// checkShardedBattery) is shared with sharded_test.go.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	twoknn "repro"
	"repro/internal/fault"
	"repro/internal/remote"
	"repro/internal/shard"
)

// fastRemoteCfg keeps retry/breaker timing short so fault scenarios resolve
// quickly; exactness is unaffected.
func fastRemoteCfg() *twoknn.RemoteConfig {
	return &twoknn.RemoteConfig{
		ProbeTimeout:     2 * time.Second,
		RetryBackoff:     time.Millisecond,
		HedgeAfter:       25 * time.Millisecond,
		BreakerCooldown:  100 * time.Millisecond,
		BreakerThreshold: 3,
	}
}

// shardHandlers builds the serving side of every shard of one dataset.
func shardHandlers(t *testing.T, name string, pts []twoknn.Point, shards int, policy twoknn.ShardPolicy) []http.Handler {
	t.Helper()
	out := make([]http.Handler, shards)
	for s := 0; s < shards; s++ {
		h, err := twoknn.NewShardHandler(name, pts, s, shards,
			twoknn.WithIndexKind(twoknn.GridIndex), twoknn.WithBlockCapacity(16),
			twoknn.WithShardPolicy(policy))
		if err != nil {
			t.Fatalf("NewShardHandler(%s, %d/%d): %v", name, s, shards, err)
		}
		out[s] = h
	}
	return out
}

// dialLoopback dials a dataset over in-process loopback transports (one
// replica per shard, no sockets).
func dialLoopback(t *testing.T, name string, pts []twoknn.Point, shards int, policy twoknn.ShardPolicy) *twoknn.RemoteRelation {
	t.Helper()
	handlers := shardHandlers(t, name, pts, shards, policy)
	tps := make([][]remote.ShardTransport, shards)
	for s, h := range handlers {
		tps[s] = []remote.ShardTransport{remote.NewLoopback(h.(*remote.ShardServer), "")}
	}
	rr, err := twoknn.DialRemoteTransports(context.Background(), name, tps, fastRemoteCfg())
	if err != nil {
		t.Fatalf("DialRemoteTransports(%s): %v", name, err)
	}
	return rr
}

// dialHTTP serves every shard on replicas httptest servers each (the same
// shard snapshot behind each replica URL) and dials the dataset over real
// HTTP. It returns the relation and the replica URLs, urls[s][r].
func dialHTTP(t *testing.T, name string, pts []twoknn.Point, shards, replicas int, cfg *twoknn.RemoteConfig) (*twoknn.RemoteRelation, [][]string) {
	t.Helper()
	handlers := shardHandlers(t, name, pts, shards, twoknn.HashSharding)
	urls := make([][]string, shards)
	for s, h := range handlers {
		for r := 0; r < replicas; r++ {
			srv := httptest.NewServer(h)
			t.Cleanup(srv.Close)
			urls[s] = append(urls[s], srv.URL)
		}
	}
	rr, err := twoknn.DialRemote(context.Background(), name, urls, cfg)
	if err != nil {
		t.Fatalf("DialRemote(%s): %v", name, err)
	}
	return rr, urls
}

// checkRemoteKNNSelect covers the select shape the shared battery only runs
// for *ShardedRelation operands.
func checkRemoteKNNSelect(t *testing.T, exp *oracleExpected, a *twoknn.RemoteRelation, opts ...twoknn.QueryOption) {
	t.Helper()
	got, err := a.KNNSelect(oracleFocal, 7, opts...)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "KNNSelect", exp.knnSelect, got, false)
	got, err = a.KNNSelect(oracleFocal, a.Len()+10, opts...)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "KNNSelect k>|E|", exp.knnSelectBig, got, false)
}

// TestRemoteDifferentialOracle holds every query shape byte-identical across
// the three execution layouts of the same points: in-process single
// relations (the expected side), remote over loopback transports, and
// remote over real HTTP — including a mixed-operand run (remote outer,
// local inner, sharded third).
func TestRemoteDifferentialOracle(t *testing.T) {
	ptsA, ptsB, ptsC := oracleDataset(t, "uniform")
	a := buildSingle(t, "A", ptsA, twoknn.GridIndex)
	b := buildSingle(t, "B", ptsB, twoknn.GridIndex)
	c := buildSingle(t, "C", ptsC, twoknn.GridIndex)
	exp := computeExpected(t, a, b, c)

	for _, policy := range []twoknn.ShardPolicy{twoknn.HashSharding, twoknn.SpatialSharding} {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("loopback/%s/S=%d", policy, shards), func(t *testing.T) {
				ra := dialLoopback(t, "A", ptsA, shards, policy)
				rb := dialLoopback(t, "B", ptsB, shards, policy)
				rc := dialLoopback(t, "C", ptsC, shards, policy)
				checkRemoteKNNSelect(t, exp, ra)
				checkShardedBattery(t, exp, ra, rb, rc)
			})
		}
	}

	t.Run("http/S=3", func(t *testing.T) {
		ra, _ := dialHTTP(t, "A", ptsA, 3, 1, fastRemoteCfg())
		rb, _ := dialHTTP(t, "B", ptsB, 3, 1, fastRemoteCfg())
		rc, _ := dialHTTP(t, "C", ptsC, 3, 1, fastRemoteCfg())
		checkRemoteKNNSelect(t, exp, ra)
		checkShardedBattery(t, exp, ra, rb, rc)

		// The wire layer must account shard-side work: a battery's worth of
		// probes leaves non-zero folded counters on the coordinator side.
		_, total := ra.Snapshot()
		if total.PointsCompared == 0 || total.Neighborhoods == 0 {
			t.Fatalf("remote per-shard counters did not fold wire stats: %+v", total)
		}
	})

	t.Run("mixed-operands", func(t *testing.T) {
		ra := dialLoopback(t, "A", ptsA, 2, twoknn.HashSharding)
		sc := buildSharded(t, "C", ptsC, twoknn.GridIndex, 2, twoknn.HashSharding)
		checkShardedBattery(t, exp, ra, b, sc)
	})
}

// TestRemoteDifferentialUnderFaults drops every preferred replica of every
// shard: each probe's first attempt fails as a transient connection error
// and the envelope fails over to the second replica. The whole battery must
// stay byte-identical, and the envelope counters must show the failovers.
func TestRemoteDifferentialUnderFaults(t *testing.T) {
	ptsA, ptsB, ptsC := oracleDataset(t, "uniform")
	a := buildSingle(t, "A", ptsA, twoknn.GridIndex)
	b := buildSingle(t, "B", ptsB, twoknn.GridIndex)
	c := buildSingle(t, "C", ptsC, twoknn.GridIndex)
	exp := computeExpected(t, a, b, c)

	cfg := fastRemoteCfg()
	ra, urlsA := dialHTTP(t, "A", ptsA, 3, 2, cfg)
	rb, urlsB := dialHTTP(t, "B", ptsB, 3, 2, cfg)
	rc, urlsC := dialHTTP(t, "C", ptsC, 3, 2, cfg)

	dead := make(map[string]bool)
	for _, urls := range [][][]string{urlsA, urlsB, urlsC} {
		for _, reps := range urls {
			dead[reps[0]] = true
		}
	}
	fault.Arm(&fault.Injector{DropProbe: func(ep string) bool { return dead[ep] }})
	defer fault.Disarm()

	checkRemoteKNNSelect(t, exp, ra)
	checkShardedBattery(t, exp, ra, rb, rc)

	failovers := int64(0)
	for _, s := range ra.RemoteStats() {
		failovers += s.Failovers
	}
	if failovers == 0 {
		t.Fatal("expected replica failovers with every primary dropped, counted none")
	}
}

// TestRemoteResetFailover injects mid-query connection resets on shard 0's
// preferred replica (the shard serves the probe; the response never
// arrives): retries against the primary keep failing, failover to the
// second replica recovers the exact answer.
func TestRemoteResetFailover(t *testing.T) {
	ptsA, _, _ := oracleDataset(t, "uniform")
	a := buildSingle(t, "A", ptsA, twoknn.GridIndex)
	want, err := a.KNNSelect(oracleFocal, 9)
	if err != nil {
		t.Fatal(err)
	}

	cfg := fastRemoteCfg()
	cfg.MaxRetries = 1
	ra, urls := dialHTTP(t, "A", ptsA, 2, 2, cfg)
	fault.ResetEndpoint(urls[0][0])
	defer fault.Disarm()

	got, err := ra.KNNSelect(oracleFocal, 9)
	if err != nil {
		t.Fatalf("KNNSelect under connection resets: %v", err)
	}
	samePoints(t, "KNNSelect/reset-failover", want, got, false)

	st := ra.RemoteStats()[0]
	if st.Failovers == 0 {
		t.Fatalf("expected failover past the resetting primary, stats %+v", st)
	}
	if st.Endpoints[0].Retries == 0 {
		t.Fatalf("expected retries against the resetting primary, stats %+v", st.Endpoints[0])
	}
}

// TestRemoteSlowShardDeadline covers the slow-remote-shard scenarios: a
// stalled endpoint must burn its per-attempt budget — not the process — and
// surface as the typed taxonomy. With replicas it must not surface at all.
func TestRemoteSlowShardDeadline(t *testing.T) {
	ptsA, _, _ := oracleDataset(t, "uniform")

	t.Run("single-replica-exhausts", func(t *testing.T) {
		cfg := fastRemoteCfg()
		cfg.ProbeTimeout = 30 * time.Millisecond
		cfg.MaxRetries = twoknn.NoRetries
		ra, urls := dialHTTP(t, "A", ptsA, 1, 1, cfg)
		fault.SlowEndpoint(urls[0][0], 500*time.Millisecond)
		defer fault.Disarm()

		_, err := ra.KNNSelect(oracleFocal, 5)
		if !errors.Is(err, twoknn.ErrShardUnavailable) {
			t.Fatalf("want ErrShardUnavailable from an exhausted slow shard, got %v", err)
		}
	})

	t.Run("query-deadline-wins", func(t *testing.T) {
		cfg := fastRemoteCfg()
		ra, urls := dialHTTP(t, "A", ptsA, 1, 1, cfg)
		fault.SlowEndpoint(urls[0][0], 2*time.Second)
		defer fault.Disarm()

		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		_, err := ra.KNNSelect(oracleFocal, 5, twoknn.WithContext(ctx))
		if !errors.Is(err, twoknn.ErrQueryCanceled) {
			t.Fatalf("want ErrQueryCanceled past the query deadline, got %v", err)
		}
	})

	t.Run("replica-recovers", func(t *testing.T) {
		a := buildSingle(t, "A", ptsA, twoknn.GridIndex)
		want, err := a.KNNSelect(oracleFocal, 9)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastRemoteCfg()
		cfg.ProbeTimeout = 50 * time.Millisecond
		cfg.MaxRetries = twoknn.NoRetries
		ra, urls := dialHTTP(t, "A", ptsA, 2, 2, cfg)
		fault.SlowEndpoint(urls[1][0], time.Second)
		defer fault.Disarm()

		got, err := ra.KNNSelect(oracleFocal, 9)
		if err != nil {
			t.Fatalf("KNNSelect with a slow primary and a healthy replica: %v", err)
		}
		samePoints(t, "KNNSelect/slow-primary", want, got, false)
	})
}

// TestRemoteBreakerSheds drives a dead primary past the breaker threshold:
// the breaker trips open, later queries skip the endpoint without paying
// its failure latency, answers stay exact through the replica throughout.
func TestRemoteBreakerSheds(t *testing.T) {
	ptsA, _, _ := oracleDataset(t, "uniform")
	a := buildSingle(t, "A", ptsA, twoknn.GridIndex)
	want, err := a.KNNSelect(oracleFocal, 9)
	if err != nil {
		t.Fatal(err)
	}

	cfg := fastRemoteCfg()
	cfg.MaxRetries = twoknn.NoRetries
	cfg.HedgeAfter = twoknn.NoHedging
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour // stays open for the test's lifetime
	ra, urls := dialHTTP(t, "A", ptsA, 1, 2, cfg)
	fault.DropEndpoint(urls[0][0])
	defer fault.Disarm()

	for i := 0; i < 6; i++ {
		got, err := ra.KNNSelect(oracleFocal, 9)
		if err != nil {
			t.Fatalf("KNNSelect %d with dead primary: %v", i, err)
		}
		samePoints(t, "KNNSelect/breaker", want, got, false)
	}

	ep := ra.RemoteStats()[0].Endpoints[0]
	if ep.Breaker != "open" {
		t.Fatalf("primary breaker state = %q, want open (stats %+v)", ep.Breaker, ep)
	}
	if ep.BreakerTrips == 0 {
		t.Fatalf("expected a breaker trip on the dead primary, stats %+v", ep)
	}
	// Once tripped, failover demotes the endpoint behind the healthy
	// replica: the 2 dial calls plus BreakerThreshold failed probes are the
	// only attempts it ever receives, however many queries follow.
	if want := int64(2 + cfg.BreakerThreshold); ep.Attempts != want {
		t.Fatalf("dead primary received %d attempts, want %d (breaker must shed the rest): %+v",
			ep.Attempts, want, ep)
	}
}

// TestRemotePartialResults covers the graceful-degradation contract: with a
// whole shard down, the default is fail-closed (typed ErrShardUnavailable,
// no results), and WithPartialResults returns the exact answer over the
// reachable shards together with a *PartialResultError naming the missing
// one.
func TestRemotePartialResults(t *testing.T) {
	ptsA, _, _ := oracleDataset(t, "uniform")

	// The expected degraded answer: the exact evaluation over only the
	// points the reachable shard (shard 1 of a 2-way hash partition) holds.
	stores := shard.Partition(ptsA, 2, shard.PolicyHash)
	reachable := make([]twoknn.Point, 0, stores[1].Len())
	for i := 0; i < stores[1].Len(); i++ {
		reachable = append(reachable, stores[1].At(i))
	}
	deg := buildSingle(t, "A1", reachable, twoknn.GridIndex)
	wantDeg, err := deg.KNNSelect(oracleFocal, 9)
	if err != nil {
		t.Fatal(err)
	}

	cfg := fastRemoteCfg()
	cfg.MaxRetries = twoknn.NoRetries
	cfg.HedgeAfter = twoknn.NoHedging
	ra, urls := dialHTTP(t, "A", ptsA, 2, 1, cfg)
	fault.DropEndpoint(urls[0][0]) // shard 0's only replica: the shard is gone
	defer fault.Disarm()

	t.Run("fail-closed-default", func(t *testing.T) {
		pts, err := ra.KNNSelect(oracleFocal, 9)
		if !errors.Is(err, twoknn.ErrShardUnavailable) {
			t.Fatalf("want ErrShardUnavailable fail-closed, got (%v, %v)", pts, err)
		}
		if pts != nil {
			t.Fatalf("fail-closed query leaked partial results: %v", pts)
		}
	})

	t.Run("partial-opt-in", func(t *testing.T) {
		pts, err := ra.KNNSelect(oracleFocal, 9, twoknn.WithPartialResults())
		var pre *twoknn.PartialResultError
		if !errors.As(err, &pre) {
			t.Fatalf("want *PartialResultError, got %v", err)
		}
		if !errors.Is(err, twoknn.ErrShardUnavailable) {
			t.Fatalf("PartialResultError must wrap ErrShardUnavailable, got %v", err)
		}
		if len(pre.Missing) != 1 || pre.Missing[0] != 0 {
			t.Fatalf("Missing = %v, want [0]", pre.Missing)
		}
		if pre.Errs[0] == nil {
			t.Fatalf("Errs lacks shard 0's cause: %+v", pre.Errs)
		}
		samePoints(t, "KNNSelect/partial", wantDeg, pts, false)
	})

	t.Run("partial-join", func(t *testing.T) {
		wantJoin, err := twoknn.KNNJoin(deg, deg, 3)
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := twoknn.KNNJoin(ra, ra, 3, twoknn.WithPartialResults())
		var pre *twoknn.PartialResultError
		if !errors.As(err, &pre) {
			t.Fatalf("want *PartialResultError, got %v", err)
		}
		samePairs(t, "KNNJoin/partial", wantJoin, pairs)
	})

	t.Run("healthy-shards-mean-no-error", func(t *testing.T) {
		fault.Disarm()
		defer fault.DropEndpoint(urls[0][0])
		full := buildSingle(t, "A", ptsA, twoknn.GridIndex)
		want, err := full.KNNSelect(oracleFocal, 9)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ra.KNNSelect(oracleFocal, 9, twoknn.WithPartialResults())
		if err != nil {
			t.Fatalf("WithPartialResults over healthy shards must return err == nil, got %v", err)
		}
		samePoints(t, "KNNSelect/partial-healthy", want, got, false)
	})

	t.Run("cancellation-wins", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := ra.KNNSelect(oracleFocal, 9, twoknn.WithPartialResults(), twoknn.WithContext(ctx))
		if !errors.Is(err, twoknn.ErrQueryCanceled) {
			t.Fatalf("a dead context must win over partial mode, got %v", err)
		}
	})
}

// TestRemoteCorruptResponseRecovers injects response corruption on the
// primary: validation rejects the payload as a transient error, the retry
// (or replica) recovers, and the answer never silently degrades.
func TestRemoteCorruptResponseRecovers(t *testing.T) {
	ptsA, _, _ := oracleDataset(t, "uniform")
	a := buildSingle(t, "A", ptsA, twoknn.GridIndex)
	want, err := a.KNNSelect(oracleFocal, 9)
	if err != nil {
		t.Fatal(err)
	}

	cfg := fastRemoteCfg()
	ra, urls := dialHTTP(t, "A", ptsA, 2, 2, cfg)
	fault.Arm(&fault.Injector{CorruptResponse: func(ep string) bool { return ep == urls[1][0] }})
	defer fault.Disarm()

	got, err := ra.KNNSelect(oracleFocal, 9)
	if err != nil {
		t.Fatalf("KNNSelect under response corruption: %v", err)
	}
	samePoints(t, "KNNSelect/corrupt-recovered", want, got, false)
}

// TestRemoteRelationSurface covers the dial-time metadata and render-table
// feeds of the public type.
func TestRemoteRelationSurface(t *testing.T) {
	ptsA, _, _ := oracleDataset(t, "uniform")
	ra, _ := dialHTTP(t, "A", ptsA, 3, 1, fastRemoteCfg())

	if ra.Len() != len(ptsA) {
		t.Fatalf("Len = %d, want %d", ra.Len(), len(ptsA))
	}
	if ra.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", ra.NumShards())
	}
	if got := ra.IndexKind(); got != twoknn.GridIndex {
		t.Fatalf("IndexKind = %v, want grid", got)
	}
	if ra.Epoch() == 0 {
		t.Fatal("Epoch must be non-zero")
	}
	lens := ra.ShardLens()
	sum := 0
	for _, n := range lens {
		sum += n
	}
	if sum != len(ptsA) {
		t.Fatalf("ShardLens sum = %d, want %d", sum, len(ptsA))
	}

	pts, ids, err := ra.FetchPoints()
	if err != nil {
		t.Fatalf("FetchPoints: %v", err)
	}
	if len(pts) != len(ptsA) || len(ids) != len(ptsA) {
		t.Fatalf("FetchPoints returned %d pts / %d ids, want %d", len(pts), len(ids), len(ptsA))
	}
	seen := make(map[int32]twoknn.Point, len(ids))
	for i, id := range ids {
		if _, dup := seen[id]; dup {
			t.Fatalf("stable ID %d appears twice", id)
		}
		seen[id] = pts[i]
	}
	for i, p := range ptsA {
		if got, ok := seen[int32(i)]; !ok || got != p {
			t.Fatalf("stable ID %d: got %v ok=%v, want %v", i, got, ok, p)
		}
	}
}

// TestDialRemoteValidates covers dial-time fail-fast: empty layouts and
// unreachable endpoints are errors, not latent wrong answers.
func TestDialRemoteValidates(t *testing.T) {
	if _, err := twoknn.DialRemote(context.Background(), "x", nil, nil); err == nil {
		t.Fatal("DialRemote with no shards must fail")
	}
	if _, err := twoknn.DialRemote(context.Background(), "x", [][]string{{}}, nil); err == nil {
		t.Fatal("DialRemote with an empty replica list must fail")
	}
	cfg := fastRemoteCfg()
	cfg.ProbeTimeout = 100 * time.Millisecond
	cfg.MaxRetries = twoknn.NoRetries
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := twoknn.DialRemote(ctx, "x", [][]string{{"http://127.0.0.1:1"}}, cfg)
	if !errors.Is(err, twoknn.ErrShardUnavailable) {
		t.Fatalf("DialRemote against a dead endpoint: want ErrShardUnavailable, got %v", err)
	}
}
