package twoknn_test

import (
	"fmt"
	"reflect"
	"testing"

	twoknn "repro"
	"repro/internal/kernel"
)

// Cross-kernel equivalence matrix: every query shape the repository serves
// must return byte-identical results no matter which distance-kernel
// implementation dispatches — the scalar reference or the AVX2 fast path.
// The matrix runs all five paper query shapes plus the footnote-1 range
// extension over all four index kinds and both single and sharded sources,
// with block capacities above the batched-kernel grain so the fast paths
// genuinely fire inside the locality searcher's selection-heap feed, the
// Counting algorithm's threshold scans and the radius filters.

// kernelEquivSources builds single relations of every index kind plus
// hash- and spatially-sharded relations over pts, with leaves large enough
// to clear kernel.BatchGrain.
func kernelEquivSources(t *testing.T, name string, pts []twoknn.Point) map[string]twoknn.Source {
	t.Helper()
	bounds := twoknn.NewRect(0, 0, 1024, 1024)
	srcs := make(map[string]twoknn.Source)
	for _, kind := range []twoknn.IndexKind{
		twoknn.GridIndex, twoknn.QuadtreeIndex, twoknn.RTreeIndex, twoknn.KDTreeIndex,
	} {
		rel, err := twoknn.NewRelation(name, pts,
			twoknn.WithBounds(bounds), twoknn.WithBlockCapacity(64), twoknn.WithIndexKind(kind))
		if err != nil {
			t.Fatalf("NewRelation(%v): %v", kind, err)
		}
		srcs[kind.String()] = rel
	}
	hash3, err := twoknn.NewShardedRelation(name, pts, 3,
		twoknn.WithBounds(bounds), twoknn.WithBlockCapacity(64))
	if err != nil {
		t.Fatalf("NewShardedRelation(hash): %v", err)
	}
	srcs["sharded-hash3"] = hash3
	spatial2, err := twoknn.NewShardedRelation(name, pts, 2,
		twoknn.WithBounds(bounds), twoknn.WithBlockCapacity(64),
		twoknn.WithShardPolicy(twoknn.SpatialSharding))
	if err != nil {
		t.Fatalf("NewShardedRelation(spatial): %v", err)
	}
	srcs["sharded-spatial2"] = spatial2
	return srcs
}

// runOnEveryKernel evaluates query once per available kernel implementation
// and fails unless all results are byte-identical (reflect.DeepEqual over
// the exact float64 values, order included).
func runOnEveryKernel(t *testing.T, label string, query func() (any, error)) {
	t.Helper()
	kernels := kernel.Available()
	if len(kernels) < 2 {
		t.Skip("only one kernel implementation available; nothing to cross-check")
	}
	var baseline any
	for i, name := range kernels {
		restore, err := kernel.Use(name)
		if err != nil {
			t.Fatal(err)
		}
		got, qerr := query()
		restore()
		if qerr != nil {
			t.Fatalf("%s on kernel %q: %v", label, name, qerr)
		}
		if i == 0 {
			baseline = got
			continue
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Fatalf("%s: kernel %q diverges from %q\n got  %v\n want %v",
				label, name, kernels[0], got, baseline)
		}
	}
}

func TestCrossKernelQueryEquivalence(t *testing.T) {
	outerPts := clusteredTestPoints(977, 4)
	innerPts := clusteredTestPoints(1021, 9)
	f1 := twoknn.Point{X: 300, Y: 420}
	f2 := twoknn.Point{X: 700, Y: 260}
	rng := twoknn.NewRect(200, 200, 640, 560)

	outers := kernelEquivSources(t, "kernel-outer", outerPts)
	inners := kernelEquivSources(t, "kernel-inner", innerPts)

	algs := []twoknn.Algorithm{
		twoknn.AlgorithmConceptual, twoknn.AlgorithmCounting, twoknn.AlgorithmBlockMarking,
	}
	for backing, outer := range outers {
		inner := inners[backing]
		t.Run(backing, func(t *testing.T) {
			runOnEveryKernel(t, "TwoSelects", func() (any, error) {
				return twoknn.TwoSelects(inner, f1, 37, f2, 53)
			})
			for _, alg := range algs {
				alg := alg
				runOnEveryKernel(t, fmt.Sprintf("SelectInnerJoin/%v", alg), func() (any, error) {
					return twoknn.SelectInnerJoin(outer, inner, f1, 7, 41, twoknn.WithAlgorithm(alg))
				})
				runOnEveryKernel(t, fmt.Sprintf("RangeInnerJoin/%v", alg), func() (any, error) {
					return twoknn.RangeInnerJoin(outer, inner, rng, 6, twoknn.WithAlgorithm(alg))
				})
			}
			runOnEveryKernel(t, "SelectOuterJoin", func() (any, error) {
				return twoknn.SelectOuterJoin(outer, inner, f1, 33, 5)
			})
			runOnEveryKernel(t, "UnchainedJoins", func() (any, error) {
				return twoknn.UnchainedJoins(outer, inner, outer, 4, 3)
			})
			runOnEveryKernel(t, "ChainedJoins", func() (any, error) {
				return twoknn.ChainedJoins(outer, inner, outer, 4, 3)
			})
		})
	}
}

// clusteredTestPoints generates a deterministic mix of cluster cores and
// co-located duplicates on a quantized grid, so exact distance ties cross
// the kernels' compare paths.
func clusteredTestPoints(n int, seed int64) []twoknn.Point {
	pts := make([]twoknn.Point, 0, n)
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(mod int) float64 {
		state = state*2862933555777941757 + 3037000493
		return float64(int(state>>33) % mod)
	}
	for len(pts) < n {
		cx, cy := next(240)*4, next(240)*4 // core + 15*4 offset stays inside [0,1024)
		for j := 0; j < 8 && len(pts) < n; j++ {
			p := twoknn.Point{X: cx + next(16)*4, Y: cy + next(16)*4}
			pts = append(pts, p)
			if j%3 == 0 && len(pts) < n {
				pts = append(pts, p) // co-located duplicate
			}
		}
	}
	return pts
}
