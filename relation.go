package twoknn

import (
	"sync/atomic"

	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/index/grid"
	"repro/internal/index/kdtree"
	"repro/internal/index/overlay"
	"repro/internal/index/quadtree"
	"repro/internal/index/rtree"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Point is a location in the 2-D Euclidean plane. It is a comparable value
// type usable as a map key.
type Point = geom.Point

// Rect is a closed axis-aligned rectangle, used for range predicates and
// bounds.
type Rect = geom.Rect

// NewRect builds a rectangle from two corners, normalizing coordinate order.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// Pair is one kNN-join result row: Right is among the k nearest neighbors
// of Left in the join's inner relation.
type Pair = core.Pair

// Triple is one result row of a two-join query over relations A, B and C.
type Triple = core.Triple

// Stats collects per-query operation counters (neighborhood computations,
// blocks scanned/pruned, cache hits); pass a *Stats via WithStats.
type Stats = stats.Counters

// IndexKind selects the spatial index a Relation is built on. The query
// algorithms are index-agnostic (paper, Section 2); the grid is the paper's
// experimental default.
type IndexKind int

// The available index kinds.
const (
	// GridIndex is a uniform grid — the paper's experimental index.
	GridIndex IndexKind = iota

	// QuadtreeIndex is a PR quadtree.
	QuadtreeIndex

	// RTreeIndex is an STR bulk-loaded R-tree.
	RTreeIndex

	// KDTreeIndex is a median-split k-d tree.
	KDTreeIndex
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case QuadtreeIndex:
		return "quadtree"
	case RTreeIndex:
		return "rtree"
	case KDTreeIndex:
		return "kdtree"
	default:
		return "grid"
	}
}

// ErrEmptyRelation is returned when a Relation is built over no points
// without explicit bounds.
var ErrEmptyRelation = errors.New("twoknn: relation has no points and no explicit bounds")

// ErrNonPositiveK is the typed error every query entry point returns when a
// k parameter (k, kJoin, kSel, kAB, kCB, kBC, k1, k2) is zero or negative.
// Returned errors wrap it: test with errors.Is.
var ErrNonPositiveK = errors.New("twoknn: k must be positive")

// ErrNilRelation is the typed error every query entry point returns when a
// relation argument is nil (either a nil interface or a typed nil *Relation
// / *ShardedRelation). Returned errors wrap it: test with errors.Is.
//
// Empty relations are NOT an error at query time: every entry point accepts
// a relation with zero points (built with WithBounds) and returns an empty
// result.
var ErrNilRelation = errors.New("twoknn: nil relation")

// Source is the backing a query reads from: a single *Relation or a
// *ShardedRelation. Every package-level query function accepts any mix of
// the two — all-single arguments run the single-relation algorithms
// unchanged, and any sharded argument routes the query through the
// scatter/gather drivers (which also accept single relations as one-shard
// groups). The interface is sealed; implementations live in this package.
type Source interface {
	// Name returns the relation's name.
	Name() string
	// Len returns the relation's cardinality.
	Len() int
	// Bounds returns the indexed region.
	Bounds() Rect
	// IndexKind returns the index implementation the relation was built on.
	IndexKind() IndexKind
	// Epoch returns the data-version number of the relation's current
	// snapshot. Every mutation batch (Insert/Remove/Update on a *Relation)
	// bumps it, as does an explicit Invalidate call; result caches key on
	// it, so mutation invalidates cached answers automatically.
	Epoch() uint64

	// execGroup returns the scatter/gather view (seals the interface).
	execGroup() shard.Group
	// singleRelation returns the backing *Relation when the source is a
	// single un-sharded relation, nil otherwise.
	singleRelation() *Relation
	// srcNil reports whether the receiver is a typed nil pointer.
	srcNil() bool
}

// Relation is an indexed relation of points. Queries always run against an
// immutable snapshot; Insert, Remove and Update mutate the relation by
// publishing a new snapshot (see the mutation API in mutate.go), so readers
// and writers never block each other.
//
// Storage is columnar: each snapshot owns flat structure-of-arrays point
// storage (separate X and Y columns) that the index permuted into
// block-contiguous order at build time; mutated snapshots add delta spans
// and tombstone-compacted blocks over the same columnar shape (see
// internal/index/overlay). Every point keeps a stable ID — its position in
// the slice passed to NewRelation, or the ID Insert assigned — across that
// permutation; PointID, PointAt and PointByID expose the mapping. Stable
// IDs are the identity primitive for layers above snapshots (result
// streaming, sharded scatter/gather, mutation, change feeds): they name a
// point independently of where any particular index placed it.
type Relation struct {
	name string
	kind IndexKind

	// d is the mutable state shared by every clone: the current snapshot,
	// the epoch, and the write path. It belongs to the data, not the
	// handle.
	d *relData
}

// relData is the shared-by-clones state of one logical relation.
type relData struct {
	// epoch is the data-version number, bumped once per mutation batch.
	epoch atomic.Uint64

	// snap is the current immutable snapshot; queries load it exactly once
	// per entry and run entirely against that value (RCU: a swapped-out
	// snapshot stays valid for in-flight queries until they release it).
	snap atomic.Pointer[relSnapshot]

	cfg relationConfig

	// mu serializes the write path (mutations and compaction). Queries
	// never take it.
	mu     sync.Mutex
	ov     *overlay.Store // nil while the current snapshot is a native index
	nextID int32

	mutations   atomic.Uint64
	compactions atomic.Uint64
	compacting  atomic.Bool
}

// relSnapshot is one immutable snapshot: the core relation (index +
// searcher pool) plus lazily built point-access views. Lazy state hangs off
// the snapshot — not the Relation — so it can never go stale across
// mutations (each snapshot builds its own).
type relSnapshot struct {
	rel *core.Relation

	// Overlay residency at publish time, surfaced by DeltaStats.
	deltaLive  int
	tombstones int

	// flat is the scan-order point view for snapshots whose index spreads
	// points over several stores (overlay snapshots); nil until first use.
	flatOnce sync.Once
	flat     *geom.PointStore

	// byID maps stable ID -> scan position, built on first PointByID.
	byIDOnce sync.Once
	byID     map[int32]int32
}

// store returns the snapshot's scan-order columnar view: the index's own
// relation-wide store when it has one, otherwise a flat copy materialized
// from the blocks once per snapshot.
func (s *relSnapshot) store() *geom.PointStore {
	if st := s.rel.Store(); st != nil {
		return st
	}
	s.flatOnce.Do(func() {
		out := geom.NewPointStore(s.rel.Len())
		for _, b := range s.rel.Ix.Blocks() {
			ids := b.PointIDs()
			for i := range ids {
				out.AppendWithID(b.PointAt(i), ids[i])
			}
		}
		s.flat = out
	})
	return s.flat
}

// inverse returns the snapshot's stable-ID -> scan-position map, built on
// first use.
func (s *relSnapshot) inverse() map[int32]int32 {
	s.byIDOnce.Do(func() {
		st := s.store()
		m := make(map[int32]int32, st.Len())
		for pos, id := range st.IDs {
			m[id] = int32(pos)
		}
		s.byID = m
	})
	return s.byID
}

// RelationOption configures NewRelation.
type RelationOption func(*relationConfig)

type relationConfig struct {
	kind         IndexKind
	capacity     int
	bounds       Rect
	maxSearchers int
	shardPolicy  ShardPolicy
	compactFrac  float64
}

// WithIndexKind selects the spatial index implementation (default
// GridIndex).
func WithIndexKind(kind IndexKind) RelationOption {
	return func(c *relationConfig) { c.kind = kind }
}

// WithBlockCapacity sets the target number of points per index block
// (default 64). Smaller blocks give finer pruning at higher traversal cost.
func WithBlockCapacity(n int) RelationOption {
	return func(c *relationConfig) { c.capacity = n }
}

// WithBounds fixes the indexed region instead of deriving it from the
// points. Required for empty relations; useful to give several relations a
// common block geometry.
func WithBounds(r Rect) RelationOption {
	return func(c *relationConfig) { c.bounds = r }
}

// WithMaxSearchers bounds the relation's searcher pool: at most n query
// handles — each owning iterator pools, a selection heap and a result
// buffer — ever exist at once, so the scratch memory added by concurrency
// is n·O(handle) no matter how many queries are in flight. n ≤ 0 (the
// default) leaves the pool unbounded: handles are minted on demand and
// recycled through a sync.Pool, which adapts to load but lets a burst of
// concurrent queries grow the resident scratch set.
//
// The shed-load contract beyond the bound: plain queries block until a
// handle frees up; queries carrying a WithContext context wait only until
// the context's deadline and then fail with an error chaining
// ErrQueryCanceled and ErrSearchersExhausted; WithConcurrency's extra
// fan-out workers never wait — they stand down and the query completes on
// the handles it holds. A bounded relation therefore degrades under
// overload by queueing (bounded by caller deadlines) and by shedding
// parallelism, never by unbounded memory growth.
func WithMaxSearchers(n int) RelationOption {
	return func(c *relationConfig) { c.maxSearchers = n }
}

// buildIndex constructs the spatial index for st, shared by NewRelation and
// the compaction path. A zero bounds derives the region from the points;
// the R-tree derives it always, and an empty R-tree falls back to a
// single-cell grid so empty relations behave uniformly.
func buildIndex(st *geom.PointStore, kind IndexKind, capacity int, bounds Rect) (index.Index, error) {
	switch kind {
	case QuadtreeIndex:
		return quadtree.NewFromStore(st, quadtree.Options{LeafCapacity: capacity, Bounds: bounds})
	case KDTreeIndex:
		return kdtree.NewFromStore(st, kdtree.Options{LeafCapacity: capacity, Bounds: bounds})
	case RTreeIndex:
		if st.Len() == 0 {
			return grid.New(nil, grid.Options{Bounds: bounds, Cols: 1, Rows: 1})
		}
		return rtree.NewFromStore(st, rtree.Options{LeafCapacity: capacity})
	default:
		return grid.NewFromStore(st, grid.Options{TargetPerCell: capacity, Bounds: bounds})
	}
}

// newCore wraps an index in a core relation with this relation's pool
// policy.
func (d *relData) newCore(ix index.Index) *core.Relation {
	if d.cfg.maxSearchers > 0 {
		return core.NewRelationBounded(ix, d.cfg.maxSearchers)
	}
	return core.NewRelation(ix)
}

// NewRelation indexes pts under the given name. The name appears in EXPLAIN
// output. The point slice is copied where the index implementation needs to
// reorder it; callers may reuse pts afterwards.
func NewRelation(name string, pts []Point, opts ...RelationOption) (*Relation, error) {
	cfg := relationConfig{kind: GridIndex, capacity: 64}
	for _, o := range opts {
		o(&cfg)
	}
	if len(pts) == 0 && cfg.bounds.Area() <= 0 {
		return nil, fmt.Errorf("%w (name %q)", ErrEmptyRelation, name)
	}

	// One pass into columnar form; the index constructor permutes this
	// store into block-contiguous order, carrying the stable IDs (input
	// positions) along.
	st := geom.StoreFromPoints(pts)
	ix, err := buildIndex(st, cfg.kind, cfg.capacity, cfg.bounds)
	if err != nil {
		return nil, fmt.Errorf("twoknn: building %s index for %q: %w", cfg.kind, name, err)
	}
	d := &relData{cfg: cfg, nextID: int32(len(pts))}
	// The epoch starts at 1: 0 never names a live snapshot, so zero-valued
	// cache keys cannot alias one.
	d.epoch.Store(1)
	d.snap.Store(&relSnapshot{rel: d.newCore(ix)})
	return &Relation{name: name, kind: cfg.kind, d: d}, nil
}

// newEpoch returns a fresh epoch counter starting at 1 (0 never names a
// live snapshot, so zero-valued cache keys cannot alias one); used by the
// sharded relation, whose epoch is a standalone counter.
func newEpoch() *atomic.Uint64 {
	e := new(atomic.Uint64)
	e.Store(1)
	return e
}

// snapshot returns the relation's current immutable snapshot. Every query
// entry point calls it exactly once per distinct relation argument and runs
// entirely against the returned value.
func (r *Relation) snapshot() *relSnapshot { return r.d.snap.Load() }

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Len returns the number of points in the relation's current snapshot.
func (r *Relation) Len() int { return r.snapshot().rel.Len() }

// Bounds returns the indexed region of the current snapshot.
func (r *Relation) Bounds() Rect { return r.snapshot().rel.Ix.Bounds() }

// IndexKind returns the index implementation the relation was built with.
func (r *Relation) IndexKind() IndexKind { return r.kind }

// Points returns a copy of the current snapshot's points in index scan
// order.
func (r *Relation) Points() []Point { return r.snapshot().rel.Points() }

// PointAt returns the i-th point in index scan order, 0 ≤ i < Len(), of the
// current snapshot.
func (r *Relation) PointAt(i int) Point { return r.snapshot().store().At(i) }

// PointID returns the stable ID of the i-th point in index scan order: its
// position in the point slice the relation was built from, or the ID Insert
// assigned. The mapping survives the index's block permutation.
func (r *Relation) PointID(i int) int32 { return r.snapshot().store().ID(i) }

// PointIDs returns the stable IDs of all points, parallel to Points().
func (r *Relation) PointIDs() []int32 {
	st := r.snapshot().store()
	out := make([]int32, st.Len())
	copy(out, st.IDs)
	return out
}

// PointsWithIDs returns the live points and their stable IDs, index-aligned,
// from one snapshot — the coherent form of calling Points and PointIDs under
// concurrent mutation, where two separate calls could observe two different
// snapshots and zip a point with another epoch's ID.
func (r *Relation) PointsWithIDs() ([]Point, []int32) {
	st := r.snapshot().store()
	pts := make([]Point, st.Len())
	ids := make([]int32, st.Len())
	for i := range pts {
		pts[i] = st.At(i)
	}
	copy(ids, st.IDs)
	return pts, ids
}

// PointByID returns the point with the given stable ID, or ok == false when
// no such ID exists (including IDs whose point was removed). The first call
// on a snapshot builds an O(n)-space inverse index; later calls are O(1)
// and safe for concurrent use. The inverse belongs to the snapshot, so a
// mutation can never leave it stale: after Remove the ID resolves to
// nothing, after Insert the new ID resolves immediately.
func (r *Relation) PointByID(id int32) (p Point, ok bool) {
	s := r.snapshot()
	pos, ok := s.inverse()[id]
	if !ok {
		return Point{}, false
	}
	return s.store().At(int(pos)), true
}

// Clone returns another handle over the same logical relation: clones share
// snapshots, the epoch and the write path, so a mutation through one handle
// is visible through all of them. Every query entry point is
// goroutine-safe against a shared *Relation (queries borrow pooled
// searchers internally), so queries on a clone behave exactly like queries
// on the original; Clone is retained for API continuity with the
// pre-concurrency versions of this package, not for performance.
func (r *Relation) Clone() *Relation {
	return &Relation{name: r.name, kind: r.kind, d: r.d}
}

// Epoch implements Source: the data-version number of the snapshot. Clones
// share it — the epoch names the data, not the handle.
func (r *Relation) Epoch() uint64 { return r.d.epoch.Load() }

// Invalidate bumps the relation's epoch, making every cached result keyed
// on the previous epoch unreachable. The mutation path (Insert, Remove,
// Update) calls this automatically once per batch; the explicit hook
// remains for callers that swap data behind a name out of band.
func (r *Relation) Invalidate() { r.d.epoch.Add(1) }

// KNNSelect returns the k points of the relation closest to the focal point
// f (σ_{k,f}), in ascending (distance, X, Y) order. It errors on a nil
// receiver (ErrNilRelation) and non-positive k (ErrNonPositiveK).
func (r *Relation) KNNSelect(f Point, k int, opts ...QueryOption) ([]Point, error) {
	return KNNSelect(r, f, k, opts...)
}

// OutstandingSearchers returns the number of searcher handles currently out
// of the current snapshot's pool — a point-in-time snapshot for leak
// assertions and load metrics. A relation with no query in flight reports
// 0, including after cancelled, deadline-expired or panicked queries.
func (r *Relation) OutstandingSearchers() int { return r.snapshot().rel.Pool().Outstanding() }

// execGroup implements Source.
func (r *Relation) execGroup() shard.Group { return shard.SingleGroup(r.snapshot().rel) }

// singleRelation implements Source.
func (r *Relation) singleRelation() *Relation { return r }

// srcNil implements Source.
func (r *Relation) srcNil() bool { return r == nil }

// KNNJoin evaluates outer ⋈kNN inner: all pairs (e1, e2) with e2 among the
// k nearest neighbors of e1. Either side may be sharded; results are
// identical (the sharded path returns them in canonical SortPairs order).
// It errors on nil relations (ErrNilRelation) and non-positive k
// (ErrNonPositiveK).
func KNNJoin(outer, inner Source, k int, opts ...QueryOption) ([]Pair, error) {
	if err := checkSources(outer, inner); err != nil {
		return nil, err
	}
	if err := checkK("k", k); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	so, si := outer.singleRelation(), inner.singleRelation()
	return runQuery(&cfg, func() ([]Pair, error) {
		if so == nil || si == nil {
			return shard.Join(cfg.ctx, outer.execGroup(), inner.execGroup(), k, cfg.concurrency, cfg.stats), nil
		}
		// Resolve both sides' snapshots once, same-relation arguments to
		// the same snapshot, so a concurrent mutation cannot split the
		// query across two data versions.
		co, ci := snapshotPair(so, si)
		// The join only probes the inner relation's searcher; the outer side is
		// scanned through its immutable index and needs no handle.
		hi := acquireHandle(cfg.ctx, ci)
		defer hi.Release()
		if cfg.concurrency > 1 {
			return core.KNNJoinParallel(co, hi, k, cfg.concurrency, cfg.stats), nil
		}
		return core.KNNJoin(co, hi, k, cfg.stats), nil
	})
}

// snapshotPair resolves the snapshots of two single relations coherently:
// each distinct logical relation is loaded exactly once, and both arguments
// referring to the same relation (directly or via Clone) resolve to the
// same snapshot.
func snapshotPair(a, b *Relation) (*core.Relation, *core.Relation) {
	ca := a.snapshot().rel
	if b.d == a.d {
		return ca, ca
	}
	return ca, b.snapshot().rel
}

// snapshotCores resolves the snapshots of a slice of single relations
// coherently (see snapshotPair); rels[i] == nil yields nil.
func snapshotCores(rels []*Relation) []*core.Relation {
	out := make([]*core.Relation, len(rels))
	for i, r := range rels {
		if r == nil {
			continue
		}
		for j := 0; j < i; j++ {
			if rels[j] != nil && rels[j].d == r.d {
				out[i] = out[j]
				break
			}
		}
		if out[i] == nil {
			out[i] = r.snapshot().rel
		}
	}
	return out
}

// checkK validates a k parameter; the returned error wraps ErrNonPositiveK.
func checkK(name string, k int) error {
	if k <= 0 {
		return fmt.Errorf("%w: %s = %d", ErrNonPositiveK, name, k)
	}
	return nil
}

// checkSources validates relation arguments; the returned error wraps
// ErrNilRelation. It runs before any other method touches the arguments, so
// typed nil pointers are caught via srcNil (safe on nil receivers).
func checkSources(srcs ...Source) error {
	for i, s := range srcs {
		if s == nil || s.srcNil() {
			return fmt.Errorf("%w (argument %d)", ErrNilRelation, i+1)
		}
	}
	return nil
}
