package twoknn

import (
	"sync/atomic"

	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/index/grid"
	"repro/internal/index/kdtree"
	"repro/internal/index/quadtree"
	"repro/internal/index/rtree"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Point is a location in the 2-D Euclidean plane. It is a comparable value
// type usable as a map key.
type Point = geom.Point

// Rect is a closed axis-aligned rectangle, used for range predicates and
// bounds.
type Rect = geom.Rect

// NewRect builds a rectangle from two corners, normalizing coordinate order.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// Pair is one kNN-join result row: Right is among the k nearest neighbors
// of Left in the join's inner relation.
type Pair = core.Pair

// Triple is one result row of a two-join query over relations A, B and C.
type Triple = core.Triple

// Stats collects per-query operation counters (neighborhood computations,
// blocks scanned/pruned, cache hits); pass a *Stats via WithStats.
type Stats = stats.Counters

// IndexKind selects the spatial index a Relation is built on. The query
// algorithms are index-agnostic (paper, Section 2); the grid is the paper's
// experimental default.
type IndexKind int

// The available index kinds.
const (
	// GridIndex is a uniform grid — the paper's experimental index.
	GridIndex IndexKind = iota

	// QuadtreeIndex is a PR quadtree.
	QuadtreeIndex

	// RTreeIndex is an STR bulk-loaded R-tree.
	RTreeIndex

	// KDTreeIndex is a median-split k-d tree.
	KDTreeIndex
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case QuadtreeIndex:
		return "quadtree"
	case RTreeIndex:
		return "rtree"
	case KDTreeIndex:
		return "kdtree"
	default:
		return "grid"
	}
}

// ErrEmptyRelation is returned when a Relation is built over no points
// without explicit bounds.
var ErrEmptyRelation = errors.New("twoknn: relation has no points and no explicit bounds")

// ErrNonPositiveK is the typed error every query entry point returns when a
// k parameter (k, kJoin, kSel, kAB, kCB, kBC, k1, k2) is zero or negative.
// Returned errors wrap it: test with errors.Is.
var ErrNonPositiveK = errors.New("twoknn: k must be positive")

// ErrNilRelation is the typed error every query entry point returns when a
// relation argument is nil (either a nil interface or a typed nil *Relation
// / *ShardedRelation). Returned errors wrap it: test with errors.Is.
//
// Empty relations are NOT an error at query time: every entry point accepts
// a relation with zero points (built with WithBounds) and returns an empty
// result.
var ErrNilRelation = errors.New("twoknn: nil relation")

// Source is the backing a query reads from: a single *Relation or a
// *ShardedRelation. Every package-level query function accepts any mix of
// the two — all-single arguments run the single-relation algorithms
// unchanged, and any sharded argument routes the query through the
// scatter/gather drivers (which also accept single relations as one-shard
// groups). The interface is sealed; implementations live in this package.
type Source interface {
	// Name returns the relation's name.
	Name() string
	// Len returns the relation's cardinality.
	Len() int
	// Bounds returns the indexed region.
	Bounds() Rect
	// IndexKind returns the index implementation the relation was built on.
	IndexKind() IndexKind
	// Epoch returns the data-version number of the relation's snapshot.
	// Today's relations are immutable, so the epoch changes only through an
	// explicit Invalidate call; result caches key on it so the mutability
	// work planned in the ROADMAP invalidates them for free.
	Epoch() uint64

	// execGroup returns the scatter/gather view (seals the interface).
	execGroup() shard.Group
	// singleRelation returns the backing *Relation when the source is a
	// single un-sharded relation, nil otherwise.
	singleRelation() *Relation
	// srcNil reports whether the receiver is a typed nil pointer.
	srcNil() bool
}

// Relation is an immutable, indexed snapshot of points, ready for querying.
//
// Storage is columnar: the relation owns one flat structure-of-arrays
// PointStore (separate X and Y columns) that the index permuted into
// block-contiguous order at build time. Every point keeps a stable ID — its
// position in the slice passed to NewRelation — across that permutation;
// PointID, PointAt and PointByID expose the mapping. Stable IDs are the
// identity primitive for layers above snapshots (result streaming, sharded
// scatter/gather, change feeds): they name a point independently of where
// any particular index placed it.
type Relation struct {
	name string
	kind IndexKind
	rel  *core.Relation

	// epoch is the data-version number of the snapshot, shared by every
	// clone (it belongs to the data, not the handle). See Source.Epoch.
	epoch *atomic.Uint64

	// byID lazily maps a stable point ID to its position in the permuted
	// store (built on first PointByID).
	byIDOnce sync.Once
	byID     []int32
}

// RelationOption configures NewRelation.
type RelationOption func(*relationConfig)

type relationConfig struct {
	kind         IndexKind
	capacity     int
	bounds       Rect
	maxSearchers int
	shardPolicy  ShardPolicy
}

// WithIndexKind selects the spatial index implementation (default
// GridIndex).
func WithIndexKind(kind IndexKind) RelationOption {
	return func(c *relationConfig) { c.kind = kind }
}

// WithBlockCapacity sets the target number of points per index block
// (default 64). Smaller blocks give finer pruning at higher traversal cost.
func WithBlockCapacity(n int) RelationOption {
	return func(c *relationConfig) { c.capacity = n }
}

// WithBounds fixes the indexed region instead of deriving it from the
// points. Required for empty relations; useful to give several relations a
// common block geometry.
func WithBounds(r Rect) RelationOption {
	return func(c *relationConfig) { c.bounds = r }
}

// WithMaxSearchers bounds the relation's searcher pool: at most n query
// handles — each owning iterator pools, a selection heap and a result
// buffer — ever exist at once, so the scratch memory added by concurrency
// is n·O(handle) no matter how many queries are in flight. n ≤ 0 (the
// default) leaves the pool unbounded: handles are minted on demand and
// recycled through a sync.Pool, which adapts to load but lets a burst of
// concurrent queries grow the resident scratch set.
//
// The shed-load contract beyond the bound: plain queries block until a
// handle frees up; queries carrying a WithContext context wait only until
// the context's deadline and then fail with an error chaining
// ErrQueryCanceled and ErrSearchersExhausted; WithConcurrency's extra
// fan-out workers never wait — they stand down and the query completes on
// the handles it holds. A bounded relation therefore degrades under
// overload by queueing (bounded by caller deadlines) and by shedding
// parallelism, never by unbounded memory growth.
func WithMaxSearchers(n int) RelationOption {
	return func(c *relationConfig) { c.maxSearchers = n }
}

// NewRelation indexes pts under the given name. The name appears in EXPLAIN
// output. The point slice is copied where the index implementation needs to
// reorder it; callers may reuse pts afterwards.
func NewRelation(name string, pts []Point, opts ...RelationOption) (*Relation, error) {
	cfg := relationConfig{kind: GridIndex, capacity: 64}
	for _, o := range opts {
		o(&cfg)
	}
	if len(pts) == 0 && cfg.bounds.Area() <= 0 {
		return nil, fmt.Errorf("%w (name %q)", ErrEmptyRelation, name)
	}

	// One pass into columnar form; the index constructor permutes this
	// store into block-contiguous order, carrying the stable IDs (input
	// positions) along.
	st := geom.StoreFromPoints(pts)
	var (
		ix  index.Index
		err error
	)
	switch cfg.kind {
	case QuadtreeIndex:
		ix, err = quadtree.NewFromStore(st, quadtree.Options{LeafCapacity: cfg.capacity, Bounds: cfg.bounds})
	case KDTreeIndex:
		ix, err = kdtree.NewFromStore(st, kdtree.Options{LeafCapacity: cfg.capacity, Bounds: cfg.bounds})
	case RTreeIndex:
		if len(pts) == 0 {
			// An R-tree over nothing has no region; fall back to a
			// single-cell grid so empty relations behave uniformly.
			ix, err = grid.New(nil, grid.Options{Bounds: cfg.bounds, Cols: 1, Rows: 1})
		} else {
			ix, err = rtree.NewFromStore(st, rtree.Options{LeafCapacity: cfg.capacity})
		}
	default:
		ix, err = grid.NewFromStore(st, grid.Options{TargetPerCell: cfg.capacity, Bounds: cfg.bounds})
	}
	if err != nil {
		return nil, fmt.Errorf("twoknn: building %s index for %q: %w", cfg.kind, name, err)
	}
	var rel *core.Relation
	if cfg.maxSearchers > 0 {
		rel = core.NewRelationBounded(ix, cfg.maxSearchers)
	} else {
		rel = core.NewRelation(ix)
	}
	return &Relation{name: name, kind: cfg.kind, rel: rel, epoch: newEpoch()}, nil
}

// newEpoch returns a fresh epoch counter starting at 1 (0 never names a
// live snapshot, so zero-valued cache keys cannot alias one).
func newEpoch() *atomic.Uint64 {
	e := new(atomic.Uint64)
	e.Store(1)
	return e
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Len returns the number of points in the relation.
func (r *Relation) Len() int { return r.rel.Len() }

// Bounds returns the indexed region.
func (r *Relation) Bounds() Rect { return r.rel.Ix.Bounds() }

// IndexKind returns the index implementation the relation was built with.
func (r *Relation) IndexKind() IndexKind { return r.kind }

// Points returns a copy of the relation's points in index scan order.
func (r *Relation) Points() []Point { return r.rel.Points() }

// PointAt returns the i-th point in index scan order, 0 ≤ i < Len().
func (r *Relation) PointAt(i int) Point { return r.rel.Store().At(i) }

// PointID returns the stable ID of the i-th point in index scan order: its
// position in the point slice the relation was built from. The mapping is
// fixed at construction and survives the index's block permutation.
func (r *Relation) PointID(i int) int32 { return r.rel.Store().ID(i) }

// PointIDs returns the stable IDs of all points, parallel to Points().
func (r *Relation) PointIDs() []int32 {
	st := r.rel.Store()
	out := make([]int32, st.Len())
	copy(out, st.IDs)
	return out
}

// PointByID returns the point with the given stable ID, or ok == false when
// no such ID exists. The first call builds an O(n)-space inverse index;
// later calls are O(1) and safe for concurrent use.
func (r *Relation) PointByID(id int32) (p Point, ok bool) {
	st := r.rel.Store()
	r.byIDOnce.Do(func() {
		inv := make([]int32, st.Len())
		for i := range inv {
			inv[i] = -1
		}
		for pos, pid := range st.IDs {
			if pid >= 0 && int(pid) < len(inv) {
				inv[pid] = int32(pos)
			}
		}
		r.byID = inv
	})
	if id < 0 || int(id) >= len(r.byID) || r.byID[id] < 0 {
		return Point{}, false
	}
	return st.At(int(r.byID[id])), true
}

// Clone returns an independent handle over the same immutable index and
// searcher pool. Every query entry point is goroutine-safe against a
// shared *Relation (queries borrow pooled searchers internally), so
// queries on a clone behave exactly like queries on the original; Clone is
// retained for API continuity with the pre-concurrency versions of this
// package, not for performance.
func (r *Relation) Clone() *Relation {
	return &Relation{name: r.name, kind: r.kind, rel: r.rel.Clone(), epoch: r.epoch}
}

// Epoch implements Source: the data-version number of the snapshot. Clones
// share it — the epoch names the data, not the handle.
func (r *Relation) Epoch() uint64 { return r.epoch.Load() }

// Invalidate bumps the relation's epoch, making every cached result keyed
// on the previous epoch unreachable. Relations are immutable today, so this
// is an explicit hook (e.g. for a server swapping the dataset behind a
// name); the ROADMAP's mutable-relation work will call it from the update
// path.
func (r *Relation) Invalidate() { r.epoch.Add(1) }

// KNNSelect returns the k points of the relation closest to the focal point
// f (σ_{k,f}), in ascending (distance, X, Y) order. It errors on a nil
// receiver (ErrNilRelation) and non-positive k (ErrNonPositiveK).
func (r *Relation) KNNSelect(f Point, k int, opts ...QueryOption) ([]Point, error) {
	return KNNSelect(r, f, k, opts...)
}

// OutstandingSearchers returns the number of searcher handles currently out
// of the relation's pool — a point-in-time snapshot for leak assertions and
// load metrics. A relation with no query in flight reports 0, including
// after cancelled, deadline-expired or panicked queries.
func (r *Relation) OutstandingSearchers() int { return r.rel.Pool().Outstanding() }

// execGroup implements Source.
func (r *Relation) execGroup() shard.Group { return shard.SingleGroup(r.rel) }

// singleRelation implements Source.
func (r *Relation) singleRelation() *Relation { return r }

// srcNil implements Source.
func (r *Relation) srcNil() bool { return r == nil }

// KNNJoin evaluates outer ⋈kNN inner: all pairs (e1, e2) with e2 among the
// k nearest neighbors of e1. Either side may be sharded; results are
// identical (the sharded path returns them in canonical SortPairs order).
// It errors on nil relations (ErrNilRelation) and non-positive k
// (ErrNonPositiveK).
func KNNJoin(outer, inner Source, k int, opts ...QueryOption) ([]Pair, error) {
	if err := checkSources(outer, inner); err != nil {
		return nil, err
	}
	if err := checkK("k", k); err != nil {
		return nil, err
	}
	cfg := applyOptions(opts)
	so, si := outer.singleRelation(), inner.singleRelation()
	return runQuery(&cfg, func() ([]Pair, error) {
		if so == nil || si == nil {
			return shard.Join(cfg.ctx, outer.execGroup(), inner.execGroup(), k, cfg.concurrency, cfg.stats), nil
		}
		// The join only probes the inner relation's searcher; the outer side is
		// scanned through its immutable index and needs no handle.
		hi := acquireHandle(cfg.ctx, si.rel)
		defer hi.Release()
		if cfg.concurrency > 1 {
			return core.KNNJoinParallel(so.rel, hi, k, cfg.concurrency, cfg.stats), nil
		}
		return core.KNNJoin(so.rel, hi, k, cfg.stats), nil
	})
}

// checkK validates a k parameter; the returned error wraps ErrNonPositiveK.
func checkK(name string, k int) error {
	if k <= 0 {
		return fmt.Errorf("%w: %s = %d", ErrNonPositiveK, name, k)
	}
	return nil
}

// checkSources validates relation arguments; the returned error wraps
// ErrNilRelation. It runs before any other method touches the arguments, so
// typed nil pointers are caught via srcNil (safe on nil receivers).
func checkSources(srcs ...Source) error {
	for i, s := range srcs {
		if s == nil || s.srcNil() {
			return fmt.Errorf("%w (argument %d)", ErrNilRelation, i+1)
		}
	}
	return nil
}
