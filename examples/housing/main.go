// House hunting — the paper's Section 5 scenario.
//
// A person moving to a new city wants candidate houses that are among the
// k1 closest houses to their new workplace AND among the k2 closest to the
// children's school: two kNN-select predicates over one relation,
//
//	σ_{k1,work}(Houses) ∩ σ_{k2,school}(Houses).
//
// The example shows:
//
//  1. why evaluating the predicates sequentially is wrong — the two orders
//     disagree with each other and with the correct answer (the paper's
//     Figures 14–16);
//
//  2. the 2-kNN-select algorithm returning the correct answer at a fraction
//     of the conceptual plan's work, especially for asymmetric k values.
//
//     go run ./examples/housing
package main

import (
	"fmt"
	"log"
	"time"

	twoknn "repro"
	"repro/internal/berlinmod"
	"repro/internal/core"
	"repro/internal/index/grid"
)

func main() {
	housePts, err := berlinmod.Points(100000, berlinmod.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	houses, err := twoknn.NewRelation("houses", housePts)
	if err != nil {
		log.Fatal(err)
	}

	work := twoknn.Point{X: 5000, Y: 5000}
	school := twoknn.Point{X: 5150, Y: 4900}
	k1, k2 := 25, 400 // shortlist near work, broader circle near school

	// 1. Sequential evaluation is wrong (and ambiguous). The deliberately
	// wrong plans are not part of the public API; rebuild a core-level
	// relation over the same points to run them.
	ix, err := grid.New(houses.Points(), grid.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rel := core.NewRelation(ix)
	workFirst := core.SequentialTwoSelects(rel, work, k1, school, k2, true, nil)
	schoolFirst := core.SequentialTwoSelects(rel, work, k1, school, k2, false, nil)
	correct, err := twoknn.TwoSelects(houses, work, k1, school, k2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential work-then-school: %d houses\n", len(workFirst))
	fmt.Printf("sequential school-then-work: %d houses\n", len(schoolFirst))
	fmt.Printf("correct (independent ∩):     %d houses\n\n", len(correct))

	// 2. Conceptual vs 2-kNN-select: same answer, different work.
	var concStats, effStats twoknn.Stats
	start := time.Now()
	conc, err := twoknn.TwoSelects(houses, work, k1, school, k2,
		twoknn.WithAlgorithm(twoknn.AlgorithmConceptual), twoknn.WithStats(&concStats))
	if err != nil {
		log.Fatal(err)
	}
	concTime := time.Since(start)

	start = time.Now()
	eff, err := twoknn.TwoSelects(houses, work, k1, school, k2, twoknn.WithStats(&effStats))
	if err != nil {
		log.Fatal(err)
	}
	effTime := time.Since(start)

	if len(conc) != len(eff) {
		log.Fatalf("plans disagree: %d vs %d houses", len(conc), len(eff))
	}
	fmt.Printf("conceptual:    %v, %s\n", concTime, &concStats)
	fmt.Printf("2-kNN-select:  %v, %s\n", effTime, &effStats)

	fmt.Printf("\ncandidate houses near both work and school:\n")
	for i, h := range correct {
		if i == 10 {
			fmt.Printf("  ... (%d more)\n", len(correct)-10)
			break
		}
		fmt.Printf("  %v  (work %.0f away, school %.0f away)\n", h, h.Dist(work), h.Dist(school))
	}
}
