// Roadside assistance — the paper's Section 1 motivating scenario.
//
// A car breaks down. The driver needs a (mechanic shop, hotel) pair where
// the hotel is among the 2 closest hotels to the mechanic shop AND among
// the 2 closest hotels to a specific shopping center (to shop while the car
// is repaired). That is a kNN-join with a kNN-select on its inner relation:
//
//	(Mechanics ⋈kNN Hotels) ∩ (Mechanics × σ_{2,ShoppingCenter}(Hotels))
//
// The example demonstrates three things on a simulated city:
//
//  1. the classical optimizer rewrite (push the select below the join) is
//     rejected by the library's plan validator, with the reason;
//
//  2. the conceptual plan, the Counting algorithm and the Block-Marking
//     algorithm all return identical pairs;
//
//  3. the optimized algorithms do far less work (operation counters).
//
//     go run ./examples/roadside
package main

import (
	"fmt"
	"log"
	"time"

	twoknn "repro"
	"repro/internal/berlinmod"
	"repro/internal/plan"
)

func main() {
	// Mechanics and hotels drawn from the BerlinMOD-substitute city
	// simulation, so they concentrate along the road network.
	mechanicPts, err := berlinmod.Points(30000, berlinmod.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	hotelPts, err := berlinmod.Points(20000, berlinmod.Config{Seed: 22})
	if err != nil {
		log.Fatal(err)
	}

	mechanics, err := twoknn.NewRelation("mechanics", mechanicPts)
	if err != nil {
		log.Fatal(err)
	}
	hotels, err := twoknn.NewRelation("hotels", hotelPts)
	if err != nil {
		log.Fatal(err)
	}
	shoppingCenter := twoknn.Point{X: 5000, Y: 5000}

	// 1. The invalid rewrite is refused with an explanation.
	fmt.Println("asking the optimizer to push the select below the join's inner relation:")
	if err := plan.ValidateSelectPushdown(plan.InnerSide); err != nil {
		fmt.Printf("  refused: %v\n\n", err)
	}

	// 2 & 3. Evaluate with all three strategies and compare.
	type strategy struct {
		name string
		alg  twoknn.Algorithm
	}
	strategies := []strategy{
		{"conceptual (correct but slow)", twoknn.AlgorithmConceptual},
		{"counting", twoknn.AlgorithmCounting},
		{"block-marking", twoknn.AlgorithmBlockMarking},
	}
	var first []twoknn.Pair
	for _, s := range strategies {
		var st twoknn.Stats
		start := time.Now()
		pairs, err := twoknn.SelectInnerJoin(mechanics, hotels, shoppingCenter, 2, 2,
			twoknn.WithAlgorithm(s.alg), twoknn.WithStats(&st))
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		twoknn.SortPairs(pairs)
		fmt.Printf("%-32s %6d pairs in %10v | %s\n", s.name, len(pairs), elapsed, &st)

		if first == nil {
			first = pairs
			continue
		}
		if len(pairs) != len(first) {
			log.Fatalf("strategy %s disagrees: %d vs %d pairs", s.name, len(pairs), len(first))
		}
		for i := range pairs {
			if pairs[i] != first[i] {
				log.Fatalf("strategy %s disagrees at pair %d", s.name, i)
			}
		}
	}
	fmt.Println("\nall strategies returned identical pairs ✓")

	if len(first) > 0 {
		fmt.Println("\nbest options for the driver (mechanic, hotel):")
		for i, pr := range first {
			if i == 5 {
				break
			}
			fmt.Printf("  mechanic %v  ->  hotel %v\n", pr.Left, pr.Right)
		}
	}
}
