// Quickstart: build relations, run each of the library's two-kNN-predicate
// queries once, and print what came back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	twoknn "repro"
)

func main() {
	// A toy city: restaurants and hotels scattered over a 1000x1000 area.
	rng := rand.New(rand.NewSource(7))
	random := func(n int) []twoknn.Point {
		pts := make([]twoknn.Point, n)
		for i := range pts {
			pts[i] = twoknn.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		return pts
	}

	restaurants, err := twoknn.NewRelation("restaurants", random(5000))
	if err != nil {
		log.Fatal(err)
	}
	hotels, err := twoknn.NewRelation("hotels", random(3000))
	if err != nil {
		log.Fatal(err)
	}

	center := twoknn.Point{X: 500, Y: 500}

	// Single-predicate building blocks.
	nearest, err := hotels.KNNSelect(center, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3 hotels nearest to the city center:")
	for _, h := range nearest {
		fmt.Printf("  %v (%.1f away)\n", h, h.Dist(center))
	}

	// Two kNN predicates: restaurants joined with their 2 nearest hotels,
	// keeping only hotels that are also among the 5 nearest to the center.
	// Pushing that select below the join would be wrong; the library runs
	// the Counting or Block-Marking algorithm instead — ask it to explain.
	var explain string
	pairs, err := twoknn.SelectInnerJoin(restaurants, hotels, center, 2, 5,
		twoknn.WithExplain(&explain))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselect-inner-join: %d (restaurant, hotel) pairs\n", len(pairs))
	fmt.Println(explain)

	// Two kNN-selects: points near BOTH focal points.
	work := twoknn.Point{X: 480, Y: 520}
	both, err := twoknn.TwoSelects(hotels, center, 20, work, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hotels among 20-NN of center AND 50-NN of work: %d\n", len(both))

	// Chained joins: restaurant -> 2 nearest hotels -> 2 nearest restaurants.
	triples, err := twoknn.ChainedJoins(restaurants, hotels, restaurants, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chained join triples: %d\n", len(triples))
}
