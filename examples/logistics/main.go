// Logistics planning — chained and unchained two-join queries (Sections 4.1
// and 4.2 of the paper) on one supply network.
//
// Scenario: a retailer operates stores, depots, and supplier warehouses.
//
//   - Chained (store → depot → warehouse): for each store, its 2 nearest
//     depots, and for each such depot its 2 nearest warehouses — the
//     replenishment paths. (Stores ⋈kNN Depots) then (Depots ⋈kNN
//     Warehouses); the three QEPs of the paper's Figure 13 agree, and the
//     cached nested join is the fast one.
//
//   - Unchained (stores and workshops both anchored to depots): report
//     (store, depot, workshop) triples where the depot is among the 3
//     nearest depots of the store AND among the 3 nearest depots of the
//     workshop — depots that can serve both. Neither join may be evaluated
//     over the other's output; the library evaluates them independently
//     with Candidate/Safe block pruning and picks the join order from
//     cluster coverage.
//
//     go run ./examples/logistics
package main

import (
	"fmt"
	"log"
	"time"

	twoknn "repro"
	"repro/internal/berlinmod"
	"repro/internal/datagen"
)

func main() {
	// Depots and stores follow the city's road network; supplier
	// warehouses cluster in two industrial zones.
	storePts, err := berlinmod.Points(20000, berlinmod.Config{Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	depotPts, err := berlinmod.Points(10000, berlinmod.Config{Seed: 32})
	if err != nil {
		log.Fatal(err)
	}
	warehousePts, err := datagen.Clustered(datagen.ClusterConfig{
		NumClusters: 2, PointsPerCluster: 400, Radius: 400,
		Bounds: twoknn.NewRect(0, 0, 10000, 10000), Seed: 33,
	})
	if err != nil {
		log.Fatal(err)
	}
	workshopPts, err := datagen.Clustered(datagen.ClusterConfig{
		NumClusters: 3, PointsPerCluster: 300, Radius: 300,
		Bounds: twoknn.NewRect(0, 0, 10000, 10000), Seed: 34,
	})
	if err != nil {
		log.Fatal(err)
	}

	stores, err := twoknn.NewRelation("stores", storePts)
	if err != nil {
		log.Fatal(err)
	}
	depots, err := twoknn.NewRelation("depots", depotPts)
	if err != nil {
		log.Fatal(err)
	}
	warehouses, err := twoknn.NewRelation("warehouses", warehousePts)
	if err != nil {
		log.Fatal(err)
	}
	workshops, err := twoknn.NewRelation("workshops", workshopPts)
	if err != nil {
		log.Fatal(err)
	}

	// --- Chained joins: replenishment paths. ---
	fmt.Println("chained: store -> 2 nearest depots -> 2 nearest warehouses")
	var reference []twoknn.Triple
	for _, qep := range []twoknn.ChainedQEP{
		twoknn.ChainedRightDeep,
		twoknn.ChainedJoinIntersection,
		twoknn.ChainedNestedJoinCached,
	} {
		start := time.Now()
		triples, err := twoknn.ChainedJoins(stores, depots, warehouses, 2, 2,
			twoknn.WithChainedQEP(qep))
		if err != nil {
			log.Fatal(err)
		}
		twoknn.SortTriples(triples)
		fmt.Printf("  %-22s %8d triples in %v\n", qep, len(triples), time.Since(start))
		if reference == nil {
			reference = triples
		} else if !equalTriples(reference, triples) {
			log.Fatalf("QEP %v disagrees with the reference plan", qep)
		}
	}
	fmt.Println("  all chained QEPs agree ✓")

	// --- Unchained joins: depots serving both stores and workshops. ---
	fmt.Println("\nunchained: depots among 3-NN of a store AND 3-NN of a workshop")
	var explain string
	start := time.Now()
	triples, err := twoknn.UnchainedJoins(stores, depots, workshops, 3, 3,
		twoknn.WithExplain(&explain))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d (store, depot, workshop) triples in %v\n\n", len(triples), time.Since(start))
	fmt.Println(explain)
}

func equalTriples(a, b []twoknn.Triple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
