// Fleet tracking — continuous two-kNN-select monitoring (the paper's
// Section 7 future-work direction, implemented in internal/continuous).
//
// A dispatch service tracks taxis on the road network and continuously
// maintains the set of taxis that are simultaneously among the 20 nearest
// to the central station AND among the 40 nearest to the market plaza — the
// cabs that can plausibly serve either pickup next. Vehicle movement comes from
// the BerlinMOD-substitute traffic simulation; every tick, each vehicle's
// location update is streamed into the monitored relation, and the monitor
// emits incremental Added/Removed events instead of recomputing the answer.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"

	"repro/internal/berlinmod"
	"repro/internal/continuous"
	"repro/internal/geom"
)

func main() {
	sim, err := berlinmod.NewSimulation(berlinmod.Config{
		Network:  berlinmod.NetworkConfig{Seed: 41},
		Vehicles: 400,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Let the fleet disperse before monitoring starts.
	for i := 0; i < 10; i++ {
		sim.Step()
	}
	positions := sim.Positions()

	rel, err := continuous.NewRelation(sim.Network().Bounds(), 32, 32, positions)
	if err != nil {
		log.Fatal(err)
	}

	station := geom.Point{X: 5000, Y: 5000}
	plaza := geom.Point{X: 5500, Y: 5200}
	monitor, err := rel.MonitorTwoSelects(station, 20, plaza, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring %d taxis; initial answer: %d cabs near both station and plaza\n",
		rel.Len(), len(monitor.Current()))

	totalEvents := 0
	for tick := 1; tick <= 30; tick++ {
		sim.Step()
		next := sim.Positions()
		moved := 0
		for i, from := range positions {
			to := next[i]
			if from == to {
				continue
			}
			if err := rel.Move(from, to); err != nil {
				log.Fatal(err)
			}
			moved++
		}
		positions = next

		events := monitor.Drain()
		totalEvents += len(events)
		fmt.Printf("tick %2d: %3d location updates, %d answer changes\n", tick, moved, len(events))
	}

	fmt.Printf("\nafter 30 ticks: %d cabs in the answer, %d incremental changes total\n",
		len(monitor.Current()), totalEvents)
	for i, p := range monitor.Current() {
		if i == 8 {
			fmt.Printf("  ... (%d more)\n", len(monitor.Current())-8)
			break
		}
		fmt.Printf("  cab at %v (station %.0f, plaza %.0f)\n", p, p.Dist(station), p.Dist(plaza))
	}
}
