package twoknn

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/remote"
)

// This file is the package's robustness layer: context-aware cancellation
// for every query entry point, typed errors for the three ways a query can
// fail mid-flight, and the recover boundary that keeps worker panics from
// crashing the caller.
//
// Cancellation is cooperative and block-granular. A context supplied via
// WithContext is bound to the query's borrowed searcher handles; the
// selection scans, join loops and sharded probes poll it once per index
// block span (never per point — the batched distance kernels underneath run
// to completion on their ≤ BatchGrain span), so a cancelled query stops
// within one block scan at zero steady-state allocation cost. Internally the
// poll unwinds as a panic carrying the context's error, which the entry
// point's recover boundary converts into an error wrapping both
// ErrQueryCanceled and the context cause; no partial results escape, all
// pooled handles are released, and operation counters recorded before the
// abort are still folded into WithStats targets.

// ErrQueryCanceled is the typed error every query entry point returns when
// its WithContext context is cancelled or its deadline expires mid-query.
// Returned errors wrap it together with the context's own error, so all of
//
//	errors.Is(err, twoknn.ErrQueryCanceled)
//	errors.Is(err, context.Canceled)        // or context.DeadlineExceeded
//
// hold as appropriate. Test with errors.Is.
var ErrQueryCanceled = errors.New("twoknn: query canceled")

// ErrSearchersExhausted is the typed error for shed load on a relation
// bounded with WithMaxSearchers: every handle is out and the caller chose
// not to wait (or waited until its context expired). Test with errors.Is.
//
// The shed-load contract of WithMaxSearchers: a bounded relation admits at
// most n concurrent queries' worth of searcher scratch. Beyond the bound,
//   - plain entry points (no WithContext) block until a handle frees up;
//   - entry points with WithContext wait only until the context's deadline,
//     then fail with an error wrapping ErrQueryCanceled, this sentinel, and
//     the context's error — the caller-visible form of load shedding;
//   - WithConcurrency's extra fan-out workers never wait at all: they stand
//     down and the query completes on fewer workers.
var ErrSearchersExhausted = core.ErrSearchersExhausted

// ErrQueryPanic is the typed sentinel wrapped by every QueryPanicError.
// Test with errors.Is; recover the payload and stack with errors.As on
// *QueryPanicError.
var ErrQueryPanic = errors.New("twoknn: panic during query execution")

// QueryPanicError is returned when a query worker goroutine panics. The
// panic never crosses the worker's goroutine boundary: the driver recovers
// it, stops the remaining crew, releases every borrowed searcher handle,
// folds the operation counters recorded before the fault, and surfaces the
// panic as this error on the calling goroutine. It wraps ErrQueryPanic.
type QueryPanicError struct {
	// Value is the recovered panic value.
	Value any

	// Stack is the panicking goroutine's stack trace, captured at the
	// recovery point inside the worker.
	Stack []byte
}

// Error implements error.
func (e *QueryPanicError) Error() string {
	return fmt.Sprintf("%v: %v", ErrQueryPanic, e.Value)
}

// Unwrap makes errors.Is(err, ErrQueryPanic) hold.
func (e *QueryPanicError) Unwrap() error { return ErrQueryPanic }

// WithContext bounds the query by ctx: cancellation or deadline expiry
// stops the evaluation within one index-block scan, returning an error that
// wraps ErrQueryCanceled and ctx's error, with no partial results and all
// borrowed searcher handles returned to their pools.
//
// The context is polled at block granularity — once per block span in the
// selection scans, join loops and sharded shard probes — never per point,
// so the batched distance kernels and the zero-allocation property of the
// hot paths are unaffected. On a relation bounded with WithMaxSearchers the
// context also bounds the wait for a free searcher handle (see
// ErrSearchersExhausted for the shed-load contract).
//
// Every query entry point honors the option. A nil ctx is ignored.
func WithContext(ctx context.Context) QueryOption {
	return func(c *queryConfig) { c.ctx = ctx }
}

// runQuery is the recover boundary between the engine's panic-based fault
// unwinding and the public error-returning API. It fails fast on an
// already-expired context, then runs fn, converting a cooperative
// cancellation unwind (fault.Cancel) into an ErrQueryCanceled chain, an
// evaluation failure (fault.Fail — e.g. an exhausted remote replica set)
// into its typed error verbatim, and any other panic into a
// *QueryPanicError — an isolated worker panic (fault.Panic) keeps the
// stack captured at its origin goroutine, a panic on the calling goroutine
// captures the stack here, where the unwound frames are still live below
// the recovering defer.
//
// Under WithPartialResults it also wires the degradation channel: a
// remote.Collector rides the query context into the remote probers, and a
// clean return with recorded shard failures comes back as the (exact over
// the reachable shards) result plus a *PartialResultError.
func runQuery[T any](cfg *queryConfig, fn func() (T, error)) (out T, err error) {
	var coll *remote.Collector
	if cfg.partial {
		coll = remote.NewCollector()
		ctx := cfg.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		cfg.ctx = remote.WithCollector(ctx, coll)
	}
	defer func() {
		if r := recover(); r != nil {
			var zero T
			switch f := r.(type) {
			case *fault.Cancel:
				out, err = zero, cancelErr(f.Err)
			case *fault.Fail:
				out, err = zero, f.Err
			case *fault.Panic:
				out, err = zero, &QueryPanicError{Value: f.Value, Stack: f.Stack}
			default:
				out, err = zero, &QueryPanicError{Value: r, Stack: debug.Stack()}
			}
		}
	}()
	if cfg.ctx != nil {
		if e := cfg.ctx.Err(); e != nil {
			var zero T
			return zero, cancelErr(e)
		}
	}
	out, err = fn()
	if err == nil && coll != nil {
		if missing := coll.Missing(); len(missing) > 0 {
			err = &PartialResultError{Missing: missing, Errs: coll.Errors()}
		}
	}
	return out, err
}

// cancelErr wraps a cancellation cause into the public error chain:
// ErrQueryCanceled always, plus the cause itself (which carries
// context.Canceled / context.DeadlineExceeded, and ErrSearchersExhausted
// when a bounded pool's wait was cut short).
func cancelErr(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return fmt.Errorf("%w: %w", ErrQueryCanceled, cause)
}

// acquireHandle borrows a searcher handle bound to ctx, converting an
// acquisition failure (expired context, bounded pool wait cut short) into
// the same cancellation unwind the block checkpoints use, so runQuery maps
// every abort path through one recover.
func acquireHandle(ctx context.Context, r *core.Relation) *core.Relation {
	h, err := r.AcquireCtx(ctx)
	if err != nil {
		panic(&fault.Cancel{Err: err})
	}
	return h
}

// acquireHandlePair is acquireHandle for the two-searcher queries; a failed
// second acquisition releases the first before unwinding.
func acquireHandlePair(ctx context.Context, a, b *core.Relation) (*core.Relation, *core.Relation) {
	ha, hb, err := core.AcquirePairCtx(ctx, a, b)
	if err != nil {
		panic(&fault.Cancel{Err: err})
	}
	return ha, hb
}
