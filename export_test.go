package twoknn

import (
	"context"

	"repro/internal/remote"
)

// DialRemoteTransports exposes dialRemoteTransports to the external test
// package, which drives the differential oracle over loopback transports
// (no sockets) as one of the three execution layouts.
func DialRemoteTransports(ctx context.Context, name string, tps [][]remote.ShardTransport, cfg *RemoteConfig) (*RemoteRelation, error) {
	return dialRemoteTransports(ctx, name, tps, cfg)
}
