package twoknn_test

import (
	"math/rand"
	"strings"
	"testing"

	twoknn "repro"
	"repro/internal/datagen"
)

var testBounds = twoknn.NewRect(0, 0, 1000, 1000)

func uniformRelation(t *testing.T, name string, n int, seed int64, opts ...twoknn.RelationOption) *twoknn.Relation {
	t.Helper()
	rel, err := twoknn.NewRelation(name, datagen.Uniform(n, testBounds, seed), opts...)
	if err != nil {
		t.Fatalf("building relation %s: %v", name, err)
	}
	return rel
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := twoknn.NewRelation("empty", nil); err == nil {
		t.Errorf("empty relation without bounds must error")
	}
	rel, err := twoknn.NewRelation("empty", nil, twoknn.WithBounds(testBounds))
	if err != nil {
		t.Fatalf("empty relation with bounds must build: %v", err)
	}
	if rel.Len() != 0 {
		t.Errorf("Len = %d, want 0", rel.Len())
	}
}

func TestRelationAccessors(t *testing.T) {
	for _, kind := range []twoknn.IndexKind{twoknn.GridIndex, twoknn.QuadtreeIndex, twoknn.RTreeIndex} {
		rel := uniformRelation(t, "acc", 200, 5, twoknn.WithIndexKind(kind), twoknn.WithBlockCapacity(16))
		if rel.Name() != "acc" {
			t.Errorf("Name = %q", rel.Name())
		}
		if rel.Len() != 200 {
			t.Errorf("%v: Len = %d, want 200", kind, rel.Len())
		}
		if rel.IndexKind() != kind {
			t.Errorf("IndexKind = %v, want %v", rel.IndexKind(), kind)
		}
		if got := len(rel.Points()); got != 200 {
			t.Errorf("%v: Points len = %d", kind, got)
		}
		if rel.Bounds().Area() <= 0 {
			t.Errorf("%v: empty bounds", kind)
		}
		if kind.String() == "" {
			t.Errorf("IndexKind %d has empty String", kind)
		}
	}
}

func TestKNNSelectAndJoinPublic(t *testing.T) {
	rel := uniformRelation(t, "E", 300, 7)
	f := twoknn.Point{X: 500, Y: 500}

	pts, err := rel.KNNSelect(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("KNNSelect returned %d points, want 10", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Dist(f) < pts[i-1].Dist(f) {
			t.Fatalf("KNNSelect results not in ascending distance order")
		}
	}
	if _, err := rel.KNNSelect(f, 0); err == nil {
		t.Errorf("k=0 must error")
	}

	other := uniformRelation(t, "F", 200, 8)
	pairs, err := twoknn.KNNJoin(rel, other, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 300*3 {
		t.Fatalf("KNNJoin returned %d pairs, want %d", len(pairs), 300*3)
	}
	if _, err := twoknn.KNNJoin(nil, other, 3); err == nil {
		t.Errorf("nil relation must error")
	}
	if _, err := twoknn.KNNJoin(rel, other, -1); err == nil {
		t.Errorf("negative k must error")
	}
}

// TestPublicQueriesAgreeAcrossStrategies drives every public two-predicate
// query through all its strategies and index kinds, checking result-set
// equality — the public-API version of the core equivalence suite.
func TestPublicQueriesAgreeAcrossStrategies(t *testing.T) {
	kinds := []twoknn.IndexKind{twoknn.GridIndex, twoknn.QuadtreeIndex, twoknn.RTreeIndex}
	for _, kind := range kinds {
		outer := uniformRelation(t, "outer", 250, 11, twoknn.WithIndexKind(kind), twoknn.WithBlockCapacity(16))
		inner := uniformRelation(t, "inner", 350, 12, twoknn.WithIndexKind(kind), twoknn.WithBlockCapacity(16))
		f := twoknn.Point{X: 420, Y: 610}

		var base []twoknn.Pair
		for i, alg := range []twoknn.Algorithm{twoknn.AlgorithmConceptual, twoknn.AlgorithmCounting, twoknn.AlgorithmBlockMarking, twoknn.AlgorithmAuto} {
			got, err := twoknn.SelectInnerJoin(outer, inner, f, 4, 9, twoknn.WithAlgorithm(alg))
			if err != nil {
				t.Fatal(err)
			}
			twoknn.SortPairs(got)
			if i == 0 {
				base = got
				continue
			}
			if len(got) != len(base) {
				t.Fatalf("%v/%v: %d pairs, want %d", kind, alg, len(got), len(base))
			}
			for j := range got {
				if got[j] != base[j] {
					t.Fatalf("%v/%v: pair %d differs", kind, alg, j)
				}
			}
		}
	}
}

func TestSelectInnerJoinExplainAndStats(t *testing.T) {
	outer := uniformRelation(t, "mechanics", 100, 21)
	inner := uniformRelation(t, "hotels", 150, 22)
	f := twoknn.Point{X: 100, Y: 100}

	var explain string
	var st twoknn.Stats
	_, err := twoknn.SelectInnerJoin(outer, inner, f, 2, 2,
		twoknn.WithAlgorithm(twoknn.AlgorithmBlockMarking),
		twoknn.WithExplain(&explain), twoknn.WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"block-marking", "mechanics", "hotels", "mark-blocks"} {
		if !strings.Contains(explain, want) {
			t.Errorf("explain missing %q:\n%s", want, explain)
		}
	}
	if st.Neighborhoods == 0 {
		t.Errorf("stats not collected: %v", &st)
	}
}

func TestSelectOuterJoinPublic(t *testing.T) {
	outer := uniformRelation(t, "A", 120, 31)
	inner := uniformRelation(t, "B", 150, 32)
	f := twoknn.Point{X: 500, Y: 500}

	var explain string
	pairs, err := twoknn.SelectOuterJoin(outer, inner, f, 10, 3, twoknn.WithExplain(&explain))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10*3 {
		t.Fatalf("got %d pairs, want 30", len(pairs))
	}
	if !strings.Contains(explain, "pushdown valid") {
		t.Errorf("explain should mention the valid pushdown:\n%s", explain)
	}
	if _, err := twoknn.SelectOuterJoin(outer, inner, f, 0, 3); err == nil {
		t.Errorf("kSel=0 must error")
	}
}

func TestUnchainedJoinsPublic(t *testing.T) {
	clustered, err := datagen.Clustered(datagen.ClusterConfig{
		NumClusters: 2, PointsPerCluster: 60, Radius: 40, Bounds: testBounds, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	a, err := twoknn.NewRelation("A", clustered)
	if err != nil {
		t.Fatal(err)
	}
	b := uniformRelation(t, "B", 200, 42)
	c := uniformRelation(t, "C", 120, 43)

	var explain string
	base, err := twoknn.UnchainedJoins(a, b, c, 2, 2, twoknn.WithExplain(&explain))
	if err != nil {
		t.Fatal(err)
	}
	twoknn.SortTriples(base)
	if !strings.Contains(explain, "∩B") {
		t.Errorf("explain missing ∩B:\n%s", explain)
	}

	for _, order := range []twoknn.JoinOrder{twoknn.OrderABFirst, twoknn.OrderCBFirst} {
		got, err := twoknn.UnchainedJoins(a, b, c, 2, 2, twoknn.WithJoinOrder(order))
		if err != nil {
			t.Fatal(err)
		}
		twoknn.SortTriples(got)
		if len(got) != len(base) {
			t.Fatalf("order %v: %d triples, want %d", order, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("order %v: triple %d differs", order, i)
			}
		}
	}

	if _, err := twoknn.UnchainedJoins(a, nil, c, 2, 2); err == nil {
		t.Errorf("nil relation must error")
	}
	if _, err := twoknn.UnchainedJoins(a, b, c, 2, 0); err == nil {
		t.Errorf("kCB=0 must error")
	}
}

func TestUnchainedUniformSkipsPreprocessing(t *testing.T) {
	a := uniformRelation(t, "A", 200, 51)
	b := uniformRelation(t, "B", 200, 52)
	c := uniformRelation(t, "C", 200, 53)

	var explain string
	if _, err := twoknn.UnchainedJoins(a, b, c, 2, 2, twoknn.WithExplain(&explain)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "no payoff") {
		t.Errorf("uniform relations should disable preprocessing:\n%s", explain)
	}
}

func TestChainedJoinsPublic(t *testing.T) {
	a := uniformRelation(t, "A", 80, 61)
	b := uniformRelation(t, "B", 120, 62)
	c := uniformRelation(t, "C", 100, 63)

	var base []twoknn.Triple
	qeps := []twoknn.ChainedQEP{twoknn.ChainedRightDeep, twoknn.ChainedJoinIntersection,
		twoknn.ChainedNestedJoin, twoknn.ChainedNestedJoinCached, twoknn.ChainedAuto}
	for i, qep := range qeps {
		got, err := twoknn.ChainedJoins(a, b, c, 2, 3, twoknn.WithChainedQEP(qep))
		if err != nil {
			t.Fatal(err)
		}
		twoknn.SortTriples(got)
		if i == 0 {
			base = got
			continue
		}
		if len(got) != len(base) {
			t.Fatalf("%v: %d triples, want %d", qep, len(got), len(base))
		}
		for j := range got {
			if got[j] != base[j] {
				t.Fatalf("%v: triple %d differs", qep, j)
			}
		}
	}

	var explain string
	if _, err := twoknn.ChainedJoins(a, b, c, 2, 3, twoknn.WithExplain(&explain)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "cache") {
		t.Errorf("auto explain should mention the cache:\n%s", explain)
	}
}

func TestTwoSelectsPublic(t *testing.T) {
	rel := uniformRelation(t, "houses", 600, 71)
	f1 := twoknn.Point{X: 300, Y: 300}
	f2 := twoknn.Point{X: 320, Y: 310}

	fast, err := twoknn.TwoSelects(rel, f1, 10, f2, 200)
	if err != nil {
		t.Fatal(err)
	}
	twoknn.SortPoints(fast)
	slow, err := twoknn.TwoSelects(rel, f1, 10, f2, 200, twoknn.WithAlgorithm(twoknn.AlgorithmConceptual))
	if err != nil {
		t.Fatal(err)
	}
	twoknn.SortPoints(slow)
	if len(fast) != len(slow) {
		t.Fatalf("2-kNN-select %d points, conceptual %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("point %d differs", i)
		}
	}

	var explain string
	if _, err := twoknn.TwoSelects(rel, f1, 10, f2, 200, twoknn.WithExplain(&explain)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "clipped") {
		t.Errorf("explain should mention locality clipping:\n%s", explain)
	}
	if _, err := twoknn.TwoSelects(rel, f1, 0, f2, 5); err == nil {
		t.Errorf("k1=0 must error")
	}
}

func TestRangeInnerJoinPublic(t *testing.T) {
	outer := uniformRelation(t, "O", 200, 81)
	inner := uniformRelation(t, "I", 250, 82)
	rect := twoknn.NewRect(200, 200, 500, 500)

	var base []twoknn.Pair
	for i, alg := range []twoknn.Algorithm{twoknn.AlgorithmConceptual, twoknn.AlgorithmCounting, twoknn.AlgorithmBlockMarking} {
		got, err := twoknn.RangeInnerJoin(outer, inner, rect, 3, twoknn.WithAlgorithm(alg))
		if err != nil {
			t.Fatal(err)
		}
		twoknn.SortPairs(got)
		if i == 0 {
			base = got
			continue
		}
		if len(got) != len(base) {
			t.Fatalf("%v: %d pairs, want %d", alg, len(got), len(base))
		}
		for j := range got {
			if got[j] != base[j] {
				t.Fatalf("%v: pair %d differs", alg, j)
			}
		}
	}
	for _, pr := range base {
		if !rect.Contains(pr.Right) {
			t.Fatalf("pair %v has inner point outside the rectangle", pr)
		}
	}
}

func TestRelationClone(t *testing.T) {
	rel := uniformRelation(t, "R", 300, 91)
	clone := rel.Clone()
	f := twoknn.Point{X: 100, Y: 900}

	a, err := rel.KNNSelect(f, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := clone.KNNSelect(f, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("clone disagrees")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone result %d differs", i)
		}
	}
}

// TestConcurrentClones exercises cloned relations from several goroutines
// under the race detector.
func TestConcurrentClones(t *testing.T) {
	rel := uniformRelation(t, "R", 400, 92)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			c := rel.Clone()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				f := twoknn.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
				if _, err := c.KNNSelect(f, 5); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestExhaustivePreprocessingOption(t *testing.T) {
	outer := uniformRelation(t, "O", 150, 93)
	inner := uniformRelation(t, "I", 200, 94)
	f := twoknn.Point{X: 500, Y: 500}

	a, err := twoknn.SelectInnerJoin(outer, inner, f, 3, 5, twoknn.WithAlgorithm(twoknn.AlgorithmBlockMarking))
	if err != nil {
		t.Fatal(err)
	}
	b, err := twoknn.SelectInnerJoin(outer, inner, f, 3, 5,
		twoknn.WithAlgorithm(twoknn.AlgorithmBlockMarking), twoknn.WithExhaustivePreprocessing())
	if err != nil {
		t.Fatal(err)
	}
	twoknn.SortPairs(a)
	twoknn.SortPairs(b)
	if len(a) != len(b) {
		t.Fatalf("exhaustive preprocessing changed the answer: %d vs %d", len(a), len(b))
	}
}

func TestCountingThresholdOption(t *testing.T) {
	outer := uniformRelation(t, "O", 500, 95)
	inner := uniformRelation(t, "I", 300, 96)
	f := twoknn.Point{X: 500, Y: 500}

	var explain string
	if _, err := twoknn.SelectInnerJoin(outer, inner, f, 3, 5,
		twoknn.WithCountingThreshold(100), twoknn.WithExplain(&explain)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "block-marking") {
		t.Errorf("threshold 100 with |outer|=500 must pick Block-Marking:\n%s", explain)
	}
}

func TestKNNJoinWithParallelism(t *testing.T) {
	outer := uniformRelation(t, "O", 400, 97)
	inner := uniformRelation(t, "I", 400, 98)

	seq, err := twoknn.KNNJoin(outer, inner, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 0, 2, 8} {
		par, err := twoknn.KNNJoin(outer, inner, 3, twoknn.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(par), len(seq))
		}
		for i := range par {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: pair %d differs from sequential", workers, i)
			}
		}
	}
}

// TestStablePointIDs checks the PR 3 identity surface: a point's ID is its
// position in the input slice, identical across index kinds, and PointByID
// inverts the index permutation.
func TestStablePointIDs(t *testing.T) {
	var pts []twoknn.Point // 225 distinct points on a lattice
	for gx := 0; gx < 15; gx++ {
		for gy := 0; gy < 15; gy++ {
			pts = append(pts, twoknn.Point{X: float64(gx) * 7, Y: float64(gy) * 5})
		}
	}
	kinds := []twoknn.IndexKind{
		twoknn.GridIndex, twoknn.QuadtreeIndex, twoknn.RTreeIndex, twoknn.KDTreeIndex,
	}
	for _, kind := range kinds {
		rel, err := twoknn.NewRelation("ids", pts,
			twoknn.WithIndexKind(kind), twoknn.WithBlockCapacity(16))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if rel.Len() != len(pts) {
			t.Fatalf("%v: Len = %d, want %d", kind, rel.Len(), len(pts))
		}
		ids := rel.PointIDs()
		seen := make([]bool, len(pts))
		for i, id := range ids {
			if id < 0 || int(id) >= len(pts) {
				t.Fatalf("%v: ID %d out of range", kind, id)
			}
			if seen[id] {
				t.Fatalf("%v: ID %d duplicated", kind, id)
			}
			seen[id] = true
			// The i-th scan-order point carries the ID of its input position.
			if rel.PointAt(i) != pts[id] {
				t.Fatalf("%v: PointAt(%d) = %v, want input[%d] = %v", kind, i, rel.PointAt(i), id, pts[id])
			}
			if rel.PointID(i) != id {
				t.Fatalf("%v: PointID(%d) = %d, want %d", kind, i, rel.PointID(i), id)
			}
		}
		for id := range pts {
			p, ok := rel.PointByID(int32(id))
			if !ok || p != pts[id] {
				t.Fatalf("%v: PointByID(%d) = %v, %v; want %v", kind, id, p, ok, pts[id])
			}
		}
		if _, ok := rel.PointByID(int32(len(pts))); ok {
			t.Fatalf("%v: PointByID out of range must report !ok", kind)
		}
		if _, ok := rel.PointByID(-1); ok {
			t.Fatalf("%v: PointByID(-1) must report !ok", kind)
		}
	}
}
