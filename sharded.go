package twoknn

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/index/grid"
	"repro/internal/index/kdtree"
	"repro/internal/index/quadtree"
	"repro/internal/index/rtree"
	"repro/internal/shard"
)

// ShardPolicy selects how NewShardedRelation partitions points across
// shards.
type ShardPolicy int

// The available partitioning policies.
const (
	// HashSharding scatters points by a hash of their stable ID: shard sizes
	// balance tightly regardless of the spatial distribution, and every
	// shard covers the whole space. The right default for skewed data and
	// for workloads dominated by joins whose outer tuples spread evenly.
	HashSharding ShardPolicy = iota

	// SpatialSharding tiles space STR-style (sort by X into slabs, by Y into
	// runs): each shard owns a compact tile, so the neighbors of a probe
	// concentrate in few shards and the other shards' searches terminate
	// quickly. The right choice when queries have locality and data is not
	// heavily skewed.
	SpatialSharding
)

// String implements fmt.Stringer.
func (p ShardPolicy) String() string { return p.policy().String() }

func (p ShardPolicy) policy() shard.Policy {
	if p == SpatialSharding {
		return shard.PolicySpatial
	}
	return shard.PolicyHash
}

// WithShardPolicy selects the partitioning policy for NewShardedRelation
// (default HashSharding). NewRelation ignores it.
func WithShardPolicy(p ShardPolicy) RelationOption {
	return func(c *relationConfig) { c.shardPolicy = p }
}

// ErrInvalidShardCount is returned by NewShardedRelation for a non-positive
// shard count.
var ErrInvalidShardCount = errors.New("twoknn: shard count must be positive")

// ShardedRelation is an immutable, indexed snapshot of points partitioned
// across shards, each shard owning its own columnar point store, spatial
// index and searcher pool. It is a drop-in query operand: every query
// function accepts a *ShardedRelation wherever it accepts a *Relation (the
// Source interface), and any mix of the two.
//
// Execution is scatter/gather — per-shard candidate generation fanned out
// with WithConcurrency-style bounded parallelism, then an exact merge
// (global k re-selection by the repository-wide (distance, X, Y) tie order
// for kNN predicates) — so results are exactly the single-relation answers.
// Join-shaped results come back in canonical SortPairs/SortTriples order;
// KNNSelect and TwoSelects keep the single-relation order as-is. Global
// stable point IDs (input positions) are preserved across the partition.
//
// Like *Relation, a ShardedRelation is safe for concurrent use: queries
// borrow per-shard searcher handles from each shard's pool. WithMaxSearchers
// applies per shard.
type ShardedRelation struct {
	name   string
	kind   IndexKind
	policy ShardPolicy
	bounds Rect
	sh     *shard.Relation

	// epoch is the data-version number of the partitioned snapshot; see
	// Source.Epoch.
	epoch *atomic.Uint64
}

// NewShardedRelation indexes pts under the given name, partitioned across
// shards sub-relations. Options are shared with NewRelation — WithIndexKind
// and WithBlockCapacity configure every shard's index, WithMaxSearchers
// bounds every shard's searcher pool, and WithShardPolicy picks the
// partition.
//
// WithBounds fixes the indexed region of every shard, exactly as it fixes a
// single Relation's (required for empty relations, useful for a common
// block geometry). Without it, each non-empty shard's index fits its own
// point extent — under SpatialSharding a shard's blocks then tile its tile,
// not the whole region, which is what keeps distant shards cheap to probe.
// Query results never depend on block geometry, only cost does; the
// differential oracle suite holds across both layouts.
func NewShardedRelation(name string, pts []Point, shards int, opts ...RelationOption) (*ShardedRelation, error) {
	cfg := relationConfig{kind: GridIndex, capacity: 64}
	for _, o := range opts {
		o(&cfg)
	}
	if shards < 1 {
		return nil, fmt.Errorf("%w: got %d (name %q)", ErrInvalidShardCount, shards, name)
	}
	if len(pts) == 0 && cfg.bounds.Area() <= 0 {
		return nil, fmt.Errorf("%w (name %q)", ErrEmptyRelation, name)
	}
	bounds := cfg.bounds
	if bounds.Area() <= 0 {
		bounds = geom.RectFromPoints(pts)
	}
	build := shardIndexBuilder(cfg.kind, cfg.capacity, cfg.bounds, bounds)
	sh, err := shard.New(pts, shards, cfg.shardPolicy.policy(), cfg.maxSearchers, build)
	if err != nil {
		return nil, fmt.Errorf("twoknn: building %s-sharded %s relation %q: %w", cfg.shardPolicy, cfg.kind, name, err)
	}
	return &ShardedRelation{name: name, kind: cfg.kind, policy: cfg.shardPolicy, bounds: bounds, sh: sh, epoch: newEpoch()}, nil
}

// Epoch implements Source; see Relation.Epoch.
func (sr *ShardedRelation) Epoch() uint64 { return sr.epoch.Load() }

// Invalidate bumps the partitioned snapshot's epoch; see
// Relation.Invalidate.
func (sr *ShardedRelation) Invalidate() { sr.epoch.Add(1) }

// shardIndexBuilder returns the per-shard index constructor for the kind.
// An explicit relation bounds applies to every shard; otherwise non-empty
// shards fit their own extent (the constructors derive an inflated MBR when
// given no bounds) and empty shards (points fewer than shards, or heavy
// skew) fall back to the derived relation-wide bounds so they index cleanly.
func shardIndexBuilder(kind IndexKind, capacity int, explicit, fallback Rect) shard.Build {
	return func(st *geom.PointStore) (index.Index, error) {
		bounds := explicit // zero: the constructor fits the shard's own extent
		if bounds.Area() <= 0 && st.Len() == 0 {
			bounds = fallback
		}
		switch kind {
		case QuadtreeIndex:
			return quadtree.NewFromStore(st, quadtree.Options{LeafCapacity: capacity, Bounds: bounds})
		case KDTreeIndex:
			return kdtree.NewFromStore(st, kdtree.Options{LeafCapacity: capacity, Bounds: bounds})
		case RTreeIndex:
			if st.Len() == 0 {
				// An R-tree over nothing has no region; fall back to a
				// single-cell grid, as NewRelation does for empty relations.
				return grid.New(nil, grid.Options{Bounds: bounds, Cols: 1, Rows: 1})
			}
			return rtree.NewFromStore(st, rtree.Options{LeafCapacity: capacity})
		default:
			return grid.NewFromStore(st, grid.Options{TargetPerCell: capacity, Bounds: bounds})
		}
	}
}

// Name returns the relation's name.
func (sr *ShardedRelation) Name() string { return sr.name }

// Len returns the total number of points across all shards.
func (sr *ShardedRelation) Len() int { return sr.sh.Len() }

// Bounds returns the indexed region: the explicit WithBounds rectangle when
// one was given, otherwise the exact bounding box of the input points. (A
// *Relation built without explicit bounds reports a slightly inflated box —
// its index pads the extent — so the two backings' derived Bounds differ at
// the edges; explicit WithBounds is reported identically by both.)
// Individual shard indexes may cover tighter sub-regions, see
// NewShardedRelation.
func (sr *ShardedRelation) Bounds() Rect { return sr.bounds }

// IndexKind returns the index implementation every shard was built with.
func (sr *ShardedRelation) IndexKind() IndexKind { return sr.kind }

// Policy returns the partitioning policy.
func (sr *ShardedRelation) Policy() ShardPolicy { return sr.policy }

// NumShards returns the shard count.
func (sr *ShardedRelation) NumShards() int { return sr.sh.NumShards() }

// ShardLens returns the per-shard cardinalities, in shard order.
func (sr *ShardedRelation) ShardLens() []int {
	out := make([]int, sr.sh.NumShards())
	for i := range out {
		out[i] = sr.sh.ShardLen(i)
	}
	return out
}

// execGroup implements Source.
func (sr *ShardedRelation) execGroup() shard.Group { return sr.sh.Group() }

// singleRelation implements Source.
func (sr *ShardedRelation) singleRelation() *Relation { return nil }

// srcNil implements Source.
func (sr *ShardedRelation) srcNil() bool { return sr == nil }

// KNNSelect returns the k points of the sharded relation closest to the
// focal point f (σ_{k,f}): every shard contributes its local top-k and the
// gather re-selects the global k, so the result — including its ascending
// (distance, X, Y) order — is byte-identical to the single-relation
// KNNSelect over the same points. It errors on a nil receiver
// (ErrNilRelation) and non-positive k (ErrNonPositiveK).
func (sr *ShardedRelation) KNNSelect(f Point, k int, opts ...QueryOption) ([]Point, error) {
	return KNNSelect(sr, f, k, opts...)
}

// Points returns a copy of all points across shards, shard 0's storage order
// first, then shard 1's, and so on — the sharded counterpart of
// Relation.Points. Parallel to PointIDs.
func (sr *ShardedRelation) Points() []Point {
	out := make([]Point, 0, sr.sh.Len())
	for i := 0; i < sr.sh.NumShards(); i++ {
		out = append(out, sr.sh.Shard(i).Points()...)
	}
	return out
}

// PointIDs returns the global stable IDs of all points, parallel to
// Points(). Stable IDs are input positions and survive the partition, so a
// dataset registry (e.g. a query server) can name any point of any shard
// independently of where the partition placed it.
func (sr *ShardedRelation) PointIDs() []int32 {
	out := make([]int32, 0, sr.sh.Len())
	for i := 0; i < sr.sh.NumShards(); i++ {
		out = append(out, sr.sh.Shard(i).Store().IDs...)
	}
	return out
}

// OutstandingSearchers returns the number of searcher handles currently out
// across all shard pools — a point-in-time snapshot for leak assertions and
// load metrics. A relation with no query in flight reports 0, including
// after cancelled, deadline-expired or panicked queries.
func (sr *ShardedRelation) OutstandingSearchers() int {
	total := 0
	for i := 0; i < sr.sh.NumShards(); i++ {
		total += sr.sh.Shard(i).Pool().Outstanding()
	}
	return total
}

// ShardStats is one shard's slice of a ShardedRelation.Snapshot: its
// cardinality and the operation counters accumulated over every query that
// probed the shard since construction.
type ShardStats struct {
	// Shard is the shard's position, 0 ≤ Shard < NumShards().
	Shard int

	// Points is the number of points the shard holds.
	Points int

	// Ops are the shard's lifetime operation counters (a point-in-time
	// snapshot; concurrent queries may keep recording).
	Ops Stats
}

// Snapshot returns the per-shard lifetime operation counters and their
// aggregate. It is safe to call while queries are in flight: each shard's
// counters are read atomically (per-shard consistency; the aggregate is the
// sum of the per-shard snapshots). The per-shard series exposes partition
// balance — a shard whose counters run hot is where the next split goes.
func (sr *ShardedRelation) Snapshot() (perShard []ShardStats, total Stats) {
	perShard = make([]ShardStats, sr.sh.NumShards())
	for i := range perShard {
		snap := sr.sh.ShardCounters(i).Snapshot()
		perShard[i] = ShardStats{Shard: i, Points: sr.sh.ShardLen(i), Ops: snap}
		total.Add(&snap)
	}
	return perShard, total
}
